//! Figure 8 — sensitivity to weights: the cardinality of the chosen
//! solution as the weight of the Card QEF sweeps from 0.1 to 1.0 (the
//! remaining weight split equally among the other QEFs).
//!
//! Expected shape: cardinality grows with the weight and the curve flattens
//! after ≈ 0.5, "because by that time `µBE` is already choosing the solution
//! that has the top cardinality sources satisfying the matching threshold".

use mube_core::qefs::paper_default_qefs;

use crate::{header, row, timed_solve, Scale, Setup, Variant, EXPERIMENT_SEED};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Weight of the cardinality QEF.
    pub weight: f64,
    /// Total tuples of the chosen solution.
    pub cardinality: u64,
    /// The Card QEF score of the chosen solution.
    pub card_score: f64,
    /// Overall quality.
    pub quality: f64,
}

/// Runs the sweep.
pub fn sweep(scale: Scale) -> Vec<Point> {
    let (universe, m) = match scale {
        Scale::Paper => (200, 20),
        Scale::Quick => (50, 8),
    };
    let setup = match scale {
        Scale::Paper => Setup::paper(universe),
        Scale::Quick => Setup::small(universe),
    };
    let base_qefs = paper_default_qefs("mttf");
    let mut points = Vec::new();
    for step in 1..=10 {
        let w = f64::from(step) / 10.0;
        let rest = (1.0 - w) / 4.0;
        // QEF order in paper_default_qefs: matching, cardinality, coverage,
        // redundancy, mttf.
        let qefs = base_qefs
            .with_weights(&[rest, w, rest, rest, rest])
            .expect("sweep weights are valid");
        let constraints = Variant::Unconstrained.constraints(&setup, m, EXPERIMENT_SEED);
        let mut problem = setup.problem(constraints).expect("constraints are valid");
        problem.set_qefs(qefs);
        let solved = timed_solve(&problem, &scale.tabu(), EXPERIMENT_SEED)
            .expect("paper workloads are feasible");
        let cardinality: u64 = solved
            .solution
            .sources
            .iter()
            .map(|&s| setup.universe().source(s).cardinality())
            .sum();
        points.push(Point {
            weight: w,
            cardinality,
            card_score: solved.solution.qef_score("cardinality").unwrap_or(0.0),
            quality: solved.solution.quality,
        });
    }
    points
}

/// Runs the experiment and renders the Figure 8 table.
pub fn run(scale: Scale) -> String {
    let points = sweep(scale);
    let mut out = String::from(
        "## Figure 8 — solution cardinality vs weight of the Card QEF (choose 20 of 200)\n\n",
    );
    out.push_str(&header(&[
        "Card weight",
        "solution tuples",
        "Card score",
        "overall Q",
    ]));
    out.push('\n');
    for p in &points {
        out.push_str(&row(&[
            format!("{:.1}", p.weight),
            p.cardinality.to_string(),
            format!("{:.4}", p.card_score),
            format!("{:.4}", p.quality),
        ]));
        out.push('\n');
    }
    out
}

//! Figures 6 and 7 — execution time (Fig. 6) and overall quality (Fig. 7)
//! when choosing 10–50 sources from a universe of 200, under the paper's
//! five constraint variants.
//!
//! Expected shapes: time grows with the number of sources to choose and
//! shrinks with constraints (Fig. 6); quality grows with the number of
//! sources to choose (more options for the search to exploit) and shrinks
//! with constraints (fewer valid options) (Fig. 7).

use crate::{header, row, timed_solve, Scale, Setup, Variant, EXPERIMENT_SEED};

/// One measured point of the shared sweep.
#[derive(Debug, Clone)]
pub struct Point {
    /// `m`, the number of sources to choose.
    pub m: usize,
    /// Constraint variant label.
    pub variant: String,
    /// Solve time in seconds.
    pub seconds: f64,
    /// Overall quality of the chosen solution.
    pub quality: f64,
    /// Sources actually selected.
    pub selected: usize,
}

/// Runs the shared Fig. 6 / Fig. 7 sweep once.
pub fn sweep(scale: Scale) -> Vec<Point> {
    let (universe, ms): (usize, Vec<usize>) = match scale {
        Scale::Paper => (200, vec![10, 20, 30, 40, 50]),
        Scale::Quick => (50, vec![5, 10, 15]),
    };
    let setup = match scale {
        Scale::Paper => Setup::paper(universe),
        Scale::Quick => Setup::small(universe),
    };
    let mut points = Vec::new();
    for &m in &ms {
        for variant in Variant::paper_sweep() {
            let constraints = variant.constraints(&setup, m, EXPERIMENT_SEED);
            let problem = setup
                .problem(constraints)
                .expect("variant constraints are valid");
            let solved = timed_solve(&problem, &scale.tabu(), EXPERIMENT_SEED)
                .expect("paper workloads are feasible");
            points.push(Point {
                m,
                variant: variant.label(),
                seconds: solved.elapsed.as_secs_f64(),
                quality: solved.solution.quality,
                selected: solved.solution.sources.len(),
            });
        }
    }
    points
}

/// Renders the Figure 6 (time) table from sweep points.
pub fn render_fig6(points: &[Point]) -> String {
    let mut out = String::from(
        "## Figure 6 — execution time vs number of sources to choose (universe of 200)\n\n",
    );
    out.push_str(&header(&[
        "m (sources to choose)",
        "constraints",
        "time (s)",
    ]));
    out.push('\n');
    for p in points {
        out.push_str(&row(&[
            p.m.to_string(),
            p.variant.clone(),
            format!("{:.2}", p.seconds),
        ]));
        out.push('\n');
    }
    out
}

/// Renders the Figure 7 (quality) table from sweep points.
pub fn render_fig7(points: &[Point]) -> String {
    let mut out = String::from(
        "## Figure 7 — overall quality vs number of sources to choose (universe of 200)\n\n",
    );
    out.push_str(&header(&[
        "m (sources to choose)",
        "constraints",
        "quality Q(S)",
        "|S|",
    ]));
    out.push('\n');
    for p in points {
        out.push_str(&row(&[
            p.m.to_string(),
            p.variant.clone(),
            format!("{:.4}", p.quality),
            p.selected.to_string(),
        ]));
        out.push('\n');
    }
    out
}

/// Runs the sweep and renders the Figure 6 table.
pub fn run_fig6(scale: Scale) -> String {
    render_fig6(&sweep(scale))
}

/// Runs the sweep and renders the Figure 7 table.
pub fn run_fig7(scale: Scale) -> String {
    render_fig7(&sweep(scale))
}

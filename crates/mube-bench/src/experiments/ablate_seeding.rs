//! Ablation — tabu starting-solution construction.
//!
//! DESIGN.md calls out greedy seeding as the search-quality lever that makes
//! Figure 7's "quality grows with m" shape reproducible. This ablation
//! compares random fill vs greedy construction at equal evaluation budgets
//! across several seeds.

use mube_opt::{InitStrategy, SubsetSolver, TabuSearch};

use crate::{header, row, timed_solve, Scale, Setup, Variant, EXPERIMENT_SEED};

/// Aggregate for one (strategy, m) cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Strategy label.
    pub strategy: String,
    /// Number of sources to choose.
    pub m: usize,
    /// Mean quality across seeds.
    pub mean_quality: f64,
    /// Worst quality across seeds.
    pub min_quality: f64,
    /// Mean evaluations to convergence.
    pub mean_evaluations: f64,
}

/// Runs the ablation.
pub fn sweep(scale: Scale) -> Vec<Cell> {
    let (universe, ms, seeds): (usize, Vec<usize>, u64) = match scale {
        Scale::Paper => (200, vec![10, 30, 50], 5),
        Scale::Quick => (50, vec![5, 12], 3),
    };
    let setup = match scale {
        Scale::Paper => Setup::paper(universe),
        Scale::Quick => Setup::small(universe),
    };
    let strategies: Vec<(&str, InitStrategy)> = vec![
        ("random", InitStrategy::Random),
        ("greedy", InitStrategy::Greedy { sample: 24 }),
    ];
    let mut out = Vec::new();
    for &m in &ms {
        let constraints = Variant::Unconstrained.constraints(&setup, m, EXPERIMENT_SEED);
        let problem = setup.problem(constraints).expect("constraints are valid");
        for (label, init) in &strategies {
            let tabu = TabuSearch {
                init: init.clone(),
                ..scale.tabu()
            };
            let mut qualities = Vec::new();
            let mut evals = Vec::new();
            for seed in 0..seeds {
                let solved =
                    timed_solve(&problem, &tabu as &dyn SubsetSolver, EXPERIMENT_SEED ^ seed)
                        .expect("workload is feasible");
                qualities.push(solved.solution.quality);
                evals.push(solved.solution.evaluations as f64);
            }
            out.push(Cell {
                strategy: (*label).to_string(),
                m,
                mean_quality: qualities.iter().sum::<f64>() / qualities.len() as f64,
                min_quality: qualities.iter().cloned().fold(f64::INFINITY, f64::min),
                mean_evaluations: evals.iter().sum::<f64>() / evals.len() as f64,
            });
        }
    }
    out
}

/// Runs the ablation and renders the report.
pub fn run(scale: Scale) -> String {
    let cells = sweep(scale);
    let mut out = String::from(
        "## Ablation — tabu seeding: random fill vs greedy construction (universe of 200)\n\n",
    );
    out.push_str(&header(&["m", "seeding", "mean Q", "min Q", "mean evals"]));
    out.push('\n');
    for c in &cells {
        out.push_str(&row(&[
            c.m.to_string(),
            c.strategy.clone(),
            format!("{:.4}", c.mean_quality),
            format!("{:.4}", c.min_quality),
            format!("{:.0}", c.mean_evaluations),
        ]));
        out.push('\n');
    }
    out
}

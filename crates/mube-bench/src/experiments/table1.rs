//! Table 1 — quality of the generated GAs against the ground truth, when
//! choosing 10–50 sources from a universe of 200 with no constraints.
//!
//! The synthetic Books domain has 14 distinct concepts, so there can be at
//! most 14 true GAs. Expected shape: as `µBE` may choose more sources it
//! finds more true GAs, misses fewer, covers more attributes — and never
//! produces a false GA (precision stays perfect).

use crate::{header, row, timed_solve, Scale, Setup, Variant, EXPERIMENT_SEED};
use mube_synth::GaQualityReport;

/// One measured row.
#[derive(Debug, Clone)]
pub struct Row {
    /// `m`, the number of sources `µBE` may choose.
    pub m: usize,
    /// Sources actually selected.
    pub selected: usize,
    /// The ground-truth scoring of the solution schema.
    pub report: GaQualityReport,
}

/// Runs the sweep.
pub fn sweep(scale: Scale) -> Vec<Row> {
    let (universe, ms): (usize, Vec<usize>) = match scale {
        Scale::Paper => (200, vec![10, 20, 30, 40, 50]),
        Scale::Quick => (50, vec![5, 10, 15]),
    };
    let setup = match scale {
        Scale::Paper => Setup::paper(universe),
        Scale::Quick => Setup::small(universe),
    };
    let mut rows = Vec::new();
    for &m in &ms {
        let constraints = Variant::Unconstrained.constraints(&setup, m, EXPERIMENT_SEED);
        let problem = setup.problem(constraints).expect("constraints are valid");
        let solved = timed_solve(&problem, &scale.tabu(), EXPERIMENT_SEED)
            .expect("paper workloads are feasible");
        let report = setup.synth.ground_truth.evaluate(
            setup.universe(),
            &solved.solution.sources,
            &solved.solution.schema,
        );
        rows.push(Row {
            m,
            selected: solved.solution.sources.len(),
            report,
        });
    }
    rows
}

/// Runs the experiment and renders the Table 1 report.
pub fn run(scale: Scale) -> String {
    let rows = sweep(scale);
    let mut out = String::from("## Table 1 — quality of GAs (universe of 200, no constraints)\n\n");
    out.push_str(&header(&[
        "sources selected",
        "true GAs selected",
        "attributes in true GAs",
        "true GAs missed",
        "false GAs",
    ]));
    out.push('\n');
    for r in &rows {
        out.push_str(&row(&[
            r.selected.to_string(),
            r.report.true_gas.to_string(),
            r.report.attrs_in_true_gas.to_string(),
            r.report.true_gas_missed.to_string(),
            r.report.false_gas.to_string(),
        ]));
        out.push('\n');
    }
    out
}

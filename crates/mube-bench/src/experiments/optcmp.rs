//! §6/§7 — comparison of the four optimization algorithms.
//!
//! The paper tried stochastic local search, particle swarm optimization,
//! constrained simulated annealing, and tabu search, and found that "tabu
//! search is more robust and generates higher quality solutions". We give
//! every solver the same objective-evaluation budget and several seeds, and
//! report mean / worst / best quality plus mean time.

use mube_opt::{
    ParticleSwarm, SimulatedAnnealing, StochasticLocalSearch, SubsetSolver, TabuSearch,
};

use crate::{header, row, timed_solve, Scale, Setup, Variant, EXPERIMENT_SEED};

/// Aggregate result for one solver.
#[derive(Debug, Clone)]
pub struct SolverResult {
    /// Constraint condition label.
    pub condition: String,
    /// Solver name.
    pub name: String,
    /// Mean quality over the seeds.
    pub mean_quality: f64,
    /// Worst (min) quality — the robustness measure.
    pub min_quality: f64,
    /// Best (max) quality.
    pub max_quality: f64,
    /// Mean solve time in seconds.
    pub mean_seconds: f64,
}

/// Budget-equalized solver lineup. Tabu's convergence-based stall cutoff is
/// disabled here so every solver consumes the same number of objective
/// evaluations.
fn solvers(budget: u64) -> Vec<Box<dyn SubsetSolver>> {
    vec![
        Box::new(TabuSearch {
            max_evaluations: budget,
            stall_limit: u64::MAX,
            max_iterations: u64::MAX,
            ..crate::experiment_tabu()
        }),
        Box::new(StochasticLocalSearch {
            max_evaluations: budget,
            ..Default::default()
        }),
        Box::new(SimulatedAnnealing {
            max_evaluations: budget,
            // Cool slowly enough to use the whole budget.
            cooling: 1.0 - 10.0 / budget as f64,
            ..Default::default()
        }),
        Box::new(ParticleSwarm {
            max_evaluations: budget,
            max_generations: budget, // budget-bound, not generation-bound
            ..Default::default()
        }),
    ]
}

/// Runs the comparison.
pub fn sweep(scale: Scale) -> Vec<SolverResult> {
    let (universe, m, seeds, budget) = match scale {
        Scale::Paper => (200, 20, 5u64, 8_000u64),
        Scale::Quick => (50, 8, 3u64, 800u64),
    };
    let setup = match scale {
        Scale::Paper => Setup::paper(universe),
        Scale::Quick => Setup::small(universe),
    };
    let conditions = [
        Variant::Unconstrained,
        Variant::SourcesAndGas { sources: 5, gas: 2 },
    ];
    let mut out = Vec::new();
    for variant in conditions {
        let constraints = variant.constraints(&setup, m, EXPERIMENT_SEED);
        let problem = setup.problem(constraints).expect("constraints are valid");
        for solver in solvers(budget) {
            let mut qualities = Vec::new();
            let mut seconds = Vec::new();
            for seed in 0..seeds {
                let solved = timed_solve(&problem, solver.as_ref(), EXPERIMENT_SEED ^ seed)
                    .expect("paper workloads are feasible");
                qualities.push(solved.solution.quality);
                seconds.push(solved.elapsed.as_secs_f64());
            }
            out.push(SolverResult {
                condition: variant.label(),
                name: solver.name().to_string(),
                mean_quality: qualities.iter().sum::<f64>() / qualities.len() as f64,
                min_quality: qualities.iter().cloned().fold(f64::INFINITY, f64::min),
                max_quality: qualities.iter().cloned().fold(0.0, f64::max),
                mean_seconds: seconds.iter().sum::<f64>() / seconds.len() as f64,
            });
        }
    }
    out
}

/// Runs the experiment and renders the report.
pub fn run(scale: Scale) -> String {
    let results = sweep(scale);
    let mut out = String::from(
        "## Optimizer comparison — equal evaluation budgets, multiple seeds (choose 20 of 200)\n\n",
    );
    out.push_str(&header(&[
        "condition",
        "solver",
        "mean Q",
        "min Q",
        "max Q",
        "mean time (s)",
    ]));
    out.push('\n');
    for r in &results {
        out.push_str(&row(&[
            r.condition.clone(),
            r.name.clone(),
            format!("{:.4}", r.mean_quality),
            format!("{:.4}", r.min_quality),
            format!("{:.4}", r.max_quality),
            format!("{:.2}", r.mean_seconds),
        ]));
        out.push('\n');
    }
    out.push_str(
        "\nPaper's claim: tabu search is more robust and finds higher-quality solutions.\n",
    );
    out
}

//! Ablation — attribute-similarity measure.
//!
//! `µBE` is measure-agnostic (§3); its prototype uses 3-gram Jaccard. This
//! ablation swaps the measure and scores the resulting schemas against the
//! ground truth (Table 1 metrics), holding everything else fixed. It
//! answers: how much of the matching quality comes from the measure versus
//! from the clustering/optimization machinery?

use std::sync::Arc;

use mube_core::problem::Problem;
use mube_core::qefs::paper_default_qefs;
use mube_match::similarity::{JaccardNGram, NormalizedLevenshtein, Similarity, TokenDice};
use mube_match::{ClusterMatcher, Ensemble};
use mube_synth::{generate, SynthConfig};

use crate::{experiment_tabu, header, row, timed_solve, Scale, Variant, EXPERIMENT_SEED};

/// One measured row.
#[derive(Debug, Clone)]
pub struct Row {
    /// The measure's name.
    pub measure: String,
    /// True GAs found (of 14 concepts).
    pub true_gas: usize,
    /// Attributes covered by true GAs.
    pub attrs: usize,
    /// Concepts present but missed.
    pub missed: usize,
    /// False GAs (mixed concepts).
    pub false_gas: usize,
    /// Overall quality.
    pub quality: f64,
}

fn measures() -> Vec<Box<dyn Similarity>> {
    vec![
        Box::new(JaccardNGram::trigram()),
        Box::new(JaccardNGram::new(2)),
        Box::new(NormalizedLevenshtein),
        Box::new(TokenDice),
        Box::new(Ensemble::lexical()),
    ]
}

/// Runs the ablation.
pub fn sweep(scale: Scale) -> Vec<Row> {
    let (n, m) = match scale {
        Scale::Paper => (200, 20),
        Scale::Quick => (50, 8),
    };
    let config = match scale {
        Scale::Paper => SynthConfig::paper(n),
        Scale::Quick => SynthConfig::small(n),
    };
    let synth = generate(&config, EXPERIMENT_SEED);
    let mut rows = Vec::new();
    for measure in measures() {
        let name = measure.name().to_string();
        let matcher = Arc::new(ClusterMatcher::new(
            Arc::clone(&synth.universe),
            BoxedMeasure(measure),
        ));
        let setup = crate::Setup {
            synth: regenerate(&config),
            matcher: Arc::clone(&matcher),
        };
        let constraints = Variant::Unconstrained.constraints(&setup, m, EXPERIMENT_SEED);
        let problem = Problem::new(
            Arc::clone(&setup.synth.universe),
            matcher as Arc<dyn mube_core::MatchOperator>,
            paper_default_qefs("mttf"),
            constraints,
        )
        .expect("constraints are valid");
        let tabu = match scale {
            Scale::Paper => experiment_tabu(),
            Scale::Quick => scale.tabu(),
        };
        let solved = timed_solve(&problem, &tabu, EXPERIMENT_SEED).expect("workload is feasible");
        let report = setup.synth.ground_truth.evaluate(
            &setup.synth.universe,
            &solved.solution.sources,
            &solved.solution.schema,
        );
        rows.push(Row {
            measure: name,
            true_gas: report.true_gas,
            attrs: report.attrs_in_true_gas,
            missed: report.true_gas_missed,
            false_gas: report.false_gas,
            quality: solved.solution.quality,
        });
    }
    rows
}

/// The matcher is built over a universe generated from `config`+seed; the
/// schemas are identical across regenerations, so the ground truth of a
/// fresh generation applies to it.
fn regenerate(config: &SynthConfig) -> mube_synth::SynthUniverse {
    generate(config, EXPERIMENT_SEED)
}

/// Adapter so `Box<dyn Similarity>` satisfies `impl Similarity`.
struct BoxedMeasure(Box<dyn Similarity>);

impl Similarity for BoxedMeasure {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn similarity(&self, a: &str, b: &str) -> f64 {
        self.0.similarity(a, b)
    }
}

/// Runs the ablation and renders the report.
pub fn run(scale: Scale) -> String {
    let rows = sweep(scale);
    let mut out = String::from("## Ablation — similarity measure (choose 20 of 200, θ = 0.75)\n\n");
    out.push_str(&header(&[
        "measure",
        "true GAs",
        "attrs in true GAs",
        "missed",
        "false GAs",
        "quality",
    ]));
    out.push('\n');
    for r in &rows {
        out.push_str(&row(&[
            r.measure.clone(),
            r.true_gas.to_string(),
            r.attrs.to_string(),
            r.missed.to_string(),
            r.false_gas.to_string(),
            format!("{:.4}", r.quality),
        ]));
        out.push('\n');
    }
    out
}

//! Extension experiment — query-time cost vs number of sources.
//!
//! §1 of the paper argues that "the more sources we have, the higher these
//! costs become" (retrieval, mediation mapping, inconsistency resolution).
//! The paper never quantifies it; with the `mube-exec` substrate we can:
//! for each `m`, solve, then execute a broad query over the solution and
//! measure transfer volume, duplicate resolution work, and simulated
//! makespan.

use mube_exec::{Executor, Query, WindowBackend};

use crate::{header, row, timed_solve, Scale, Setup, Variant, EXPERIMENT_SEED};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Sources the solution selected.
    pub selected: usize,
    /// Distinct tuples the query answered.
    pub distinct: usize,
    /// Tuples transferred (including duplicates).
    pub fetched: usize,
    /// Duplicates resolved during mediation.
    pub duplicates: usize,
    /// Simulated parallel makespan in milliseconds.
    pub makespan_ms: f64,
    /// Simulated total work in milliseconds.
    pub total_ms: f64,
}

/// Runs the sweep.
pub fn sweep(scale: Scale) -> Vec<Point> {
    let (universe, ms, query_span): (usize, Vec<usize>, u64) = match scale {
        Scale::Paper => (200, vec![5, 10, 20, 30, 40], 1_000_000),
        Scale::Quick => (40, vec![3, 6, 10], 5_000),
    };
    let setup = match scale {
        Scale::Paper => Setup::paper(universe),
        Scale::Quick => Setup::small(universe),
    };
    let backend = WindowBackend::new(&setup.synth);
    let executor = Executor::new(std::sync::Arc::clone(setup.universe()), backend);
    let query = Query::range(0, query_span);
    let mut out = Vec::new();
    for &m in &ms {
        let constraints = Variant::Unconstrained.constraints(&setup, m, EXPERIMENT_SEED);
        let problem = setup.problem(constraints).expect("constraints are valid");
        let solved = timed_solve(&problem, &scale.tabu(), EXPERIMENT_SEED)
            .expect("paper workloads are feasible");
        let report = executor.execute_solution(&solved.solution, &query);
        out.push(Point {
            selected: solved.solution.sources.len(),
            distinct: report.distinct(),
            fetched: report.fetched,
            duplicates: report.duplicates(),
            makespan_ms: report.makespan.as_secs_f64() * 1000.0,
            total_ms: report.total_cost.as_secs_f64() * 1000.0,
        });
    }
    out
}

/// Runs the experiment and renders the report.
pub fn run(scale: Scale) -> String {
    let points = sweep(scale);
    let mut out = String::from(
        "## Extension — query-time cost vs number of sources (§1's cost argument, quantified)\n\n",
    );
    out.push_str(&header(&[
        "sources",
        "distinct answers",
        "tuples transferred",
        "duplicates resolved",
        "makespan (ms)",
        "total work (ms)",
    ]));
    out.push('\n');
    for p in &points {
        out.push_str(&row(&[
            p.selected.to_string(),
            p.distinct.to_string(),
            p.fetched.to_string(),
            p.duplicates.to_string(),
            format!("{:.0}", p.makespan_ms),
            format!("{:.0}", p.total_ms),
        ]));
        out.push('\n');
    }
    out.push_str(
        "\nPaper's §1 claim: retrieval and inconsistency-resolution costs grow \
         with the number of included sources.\n",
    );
    out
}

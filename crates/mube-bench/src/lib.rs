//! # mube-bench — the `µBE` experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§7), plus
//! criterion micro-benchmarks. Each binary prints the same rows/series the
//! paper reports; `run_all` regenerates the data behind `EXPERIMENTS.md`.
//!
//! | Target | Reproduces |
//! |--------|------------|
//! | `fig5_time_vs_universe` | Figure 5 — execution time vs universe size |
//! | `fig6_time_vs_m` | Figure 6 — execution time vs number of sources chosen |
//! | `fig7_quality` | Figure 7 — overall quality for the Figure 6 settings |
//! | `fig8_weight_sensitivity` | Figure 8 — solution cardinality vs Card weight |
//! | `table1_ga_quality` | Table 1 — true GAs found / attributes / missed |
//! | `pcsa_accuracy` | §7.3 — PCSA error vs exact counting (≤ 7 % claim) |
//! | `weight_perturbation` | §7.4 — robustness to ±15 % weight noise |
//! | `optimizer_comparison` | §7 — tabu vs SLS vs annealing vs PSO |
//!
//! The library half holds the shared experiment plumbing: standard setups,
//! the paper's constraint variants, and table formatting.

pub mod experiments;

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mube_core::constraints::Constraints;
use mube_core::problem::Problem;
use mube_core::qefs::paper_default_qefs;
use mube_core::solution::Solution;
use mube_core::source::Universe;
use mube_core::MubeError;
use mube_match::similarity::JaccardNGram;
use mube_match::ClusterMatcher;
use mube_opt::{SubsetSolver, TabuSearch};
use mube_synth::{generate, SynthConfig, SynthUniverse};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed used by all experiments unless a sweep varies it.
pub const EXPERIMENT_SEED: u64 = 0x1CDE_2007;

/// A generated universe plus the matcher built over it.
pub struct Setup {
    /// The synthetic universe and its ground truth.
    pub synth: SynthUniverse,
    /// The clustering matcher (shared similarity cache).
    pub matcher: Arc<ClusterMatcher>,
}

impl Setup {
    /// Generates the paper-scale setup for a universe of `num_sources`.
    pub fn paper(num_sources: usize) -> Self {
        Setup::from_config(&SynthConfig::paper(num_sources), EXPERIMENT_SEED)
    }

    /// Generates a scaled-down setup (fast; used by tests).
    pub fn small(num_sources: usize) -> Self {
        Setup::from_config(&SynthConfig::small(num_sources), EXPERIMENT_SEED)
    }

    /// Generates from an explicit config and seed.
    pub fn from_config(config: &SynthConfig, seed: u64) -> Self {
        let synth = generate(config, seed);
        let matcher = Arc::new(ClusterMatcher::new(
            Arc::clone(&synth.universe),
            JaccardNGram::trigram(),
        ));
        Setup { synth, matcher }
    }

    /// The universe.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.synth.universe
    }

    /// Builds the paper's standard problem over this setup: default QEF
    /// weights (matching .25, cardinality .25, coverage .20, redundancy
    /// .15, MTTF .15 via `wsum`) and the given constraints.
    pub fn problem(&self, constraints: Constraints) -> Result<Problem, MubeError> {
        Problem::new(
            Arc::clone(&self.synth.universe),
            Arc::clone(&self.matcher) as Arc<dyn mube_core::MatchOperator>,
            paper_default_qefs("mttf"),
            constraints,
        )
    }
}

/// The constraint variants the paper sweeps in Figures 5–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// No user constraints.
    Unconstrained,
    /// `n` source constraints on random unperturbed sources.
    Sources(usize),
    /// `sources` source constraints plus `gas` accurate GA constraints.
    SourcesAndGas {
        /// Number of source constraints.
        sources: usize,
        /// Number of GA constraints (up to 5 attributes each).
        gas: usize,
    },
}

impl Variant {
    /// The five variants the paper plots.
    pub fn paper_sweep() -> [Variant; 5] {
        [
            Variant::Unconstrained,
            Variant::Sources(1),
            Variant::Sources(3),
            Variant::Sources(5),
            Variant::SourcesAndGas { sources: 5, gas: 2 },
        ]
    }

    /// Label used in tables.
    pub fn label(&self) -> String {
        match self {
            Variant::Unconstrained => "no constraints".into(),
            Variant::Sources(n) => format!("{n} src constraint{}", if *n == 1 { "" } else { "s" }),
            Variant::SourcesAndGas { sources, gas } => {
                format!("{sources} src + {gas} GA constraints")
            }
        }
    }

    /// Materializes the variant into a constraint set over a setup.
    ///
    /// Mirrors §7.2: source constraints pick random *unperturbed* sources;
    /// GA constraints are accurate matchings of up to 5 attributes of one
    /// concept across different unperturbed sources.
    pub fn constraints(&self, setup: &Setup, max_sources: usize, seed: u64) -> Constraints {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Constraints::with_max_sources(max_sources);
        let (n_src, n_ga) = match *self {
            Variant::Unconstrained => (0, 0),
            Variant::Sources(n) => (n, 0),
            Variant::SourcesAndGas { sources, gas } => (sources, gas),
        };
        let pinned = setup.synth.random_unperturbed(n_src, &mut rng);
        for s in &pinned {
            c.required_sources.insert(*s);
        }
        // GA constraints must fit within `m` together with the source
        // constraints: build each from the already-required sources first,
        // then spend the remaining source budget on new ones.
        let mut required = c.effective_required_sources();
        let mut concept = 0usize;
        while c.required_gas.len() < n_ga && concept < mube_synth::concepts::NUM_CONCEPTS {
            // The candidate pool is the required sources plus only as many
            // fresh unperturbed sources as the budget allows, so whatever GA
            // comes back fits within `m` by construction.
            let budget = max_sources.saturating_sub(required.len());
            let mut candidates: Vec<_> = required.iter().copied().collect();
            candidates.extend(
                setup
                    .synth
                    .unperturbed
                    .iter()
                    .copied()
                    .filter(|s| !required.contains(s))
                    .take(budget),
            );
            if let Some(ga) = setup.synth.ground_truth.make_ga_constraint(
                setup.universe(),
                &candidates,
                concept,
                5,
                &mut rng,
            ) {
                required.extend(ga.sources());
                c.required_gas.push(ga);
            }
            concept += 1;
        }
        c
    }
}

/// The tabu configuration used by the experiments: a bounded evaluation
/// budget so sweep points are comparable.
pub fn experiment_tabu() -> TabuSearch {
    tabu_for_universe(200)
}

/// The experiment tabu configuration for a given universe size: the
/// candidate list scales with the neighborhood (≈ universe) size so larger
/// universes are explored proportionally — this is what makes execution
/// time grow with the universe, as in the paper's Figure 5.
pub fn tabu_for_universe(universe_size: usize) -> TabuSearch {
    TabuSearch {
        tenure: 7,
        candidates_per_iter: 12 + universe_size / 10,
        stall_limit: 30,
        max_iterations: 2_000,
        max_evaluations: 25_000,
        init: mube_opt::InitStrategy::Greedy {
            sample: 8 + universe_size / 16,
        },
        trust_region: None,
    }
}

/// Whether an experiment runs at the paper's scale or a scaled-down smoke
/// configuration (used by integration tests and `--quick`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's setup: universes of hundreds of sources, full
    /// cardinalities.
    Paper,
    /// Small universes and budgets; finishes in seconds.
    Quick,
}

impl Scale {
    /// Parses `--quick` from the process arguments (default: paper scale).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// A setup of roughly `fraction` of the scale's reference universe.
    pub fn setup(&self, num_sources: usize) -> Setup {
        match self {
            Scale::Paper => Setup::paper(num_sources),
            Scale::Quick => Setup::small(num_sources.min(60)),
        }
    }

    /// The solver budget for this scale.
    pub fn tabu(&self) -> TabuSearch {
        match self {
            Scale::Paper => experiment_tabu(),
            Scale::Quick => TabuSearch {
                max_evaluations: 800,
                ..experiment_tabu()
            },
        }
    }
}

/// Outcome of one timed solve.
pub struct TimedSolve {
    /// The solution found.
    pub solution: Solution,
    /// Wall-clock solve time.
    pub elapsed: Duration,
}

/// Solves a problem under a solver, timing the optimization only (not the
/// universe generation or cache construction).
pub fn timed_solve(
    problem: &Problem,
    solver: &dyn SubsetSolver,
    seed: u64,
) -> Result<TimedSolve, MubeError> {
    let start = Instant::now();
    let solution = problem.solve(solver, seed)?;
    Ok(TimedSolve {
        solution,
        elapsed: start.elapsed(),
    })
}

/// Convenience: the selected sources of a solution as a `BTreeSet`.
pub fn selected(solution: &Solution) -> &BTreeSet<mube_core::SourceId> {
    &solution.sources
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Prints a markdown-style header plus separator.
pub fn header(cells: &[&str]) -> String {
    let head = format!("| {} |", cells.join(" | "));
    let sep = format!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    format!("{head}\n{sep}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_setup_solves_end_to_end() {
        let setup = Setup::small(30);
        let constraints = Variant::Unconstrained.constraints(&setup, 8, 1);
        let problem = setup.problem(constraints).unwrap();
        let solved = timed_solve(&problem, &experiment_tabu(), 1).unwrap();
        assert!(!solved.solution.sources.is_empty());
        assert!(solved.solution.sources.len() <= 8);
        assert!((0.0..=1.0).contains(&solved.solution.quality));
    }

    #[test]
    fn variants_materialize() {
        let setup = Setup::small(40);
        for v in Variant::paper_sweep() {
            let c = v.constraints(&setup, 15, 2);
            match v {
                Variant::Unconstrained => {
                    assert!(c.required_sources.is_empty() && c.required_gas.is_empty());
                }
                Variant::Sources(n) => {
                    assert_eq!(c.required_sources.len(), n);
                    assert!(c.required_gas.is_empty());
                }
                Variant::SourcesAndGas { sources, gas } => {
                    assert_eq!(c.required_sources.len(), sources);
                    assert_eq!(c.required_gas.len(), gas);
                }
            }
            assert!(c.validate(setup.universe()).is_ok(), "variant {v:?}");
        }
    }

    #[test]
    fn constrained_solve_honours_pins() {
        let setup = Setup::small(30);
        let c = Variant::Sources(3).constraints(&setup, 10, 3);
        let pinned = c.required_sources.clone();
        let problem = setup.problem(c).unwrap();
        let solved = timed_solve(&problem, &experiment_tabu(), 2).unwrap();
        for p in pinned {
            assert!(solved.solution.sources.contains(&p));
        }
    }

    #[test]
    fn table_formatting() {
        let h = header(&["a", "b"]);
        assert!(h.contains("| a | b |"));
        assert!(h.contains("|---|---|"));
        assert_eq!(row(&["1".into(), "2".into()]), "| 1 | 2 |");
    }
}

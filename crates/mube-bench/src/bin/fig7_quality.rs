//! Reproduces Figure 7: overall solution quality for the Figure 6 settings.
//! Pass `--quick` for a scaled-down smoke run.
fn main() {
    let scale = mube_bench::Scale::from_args();
    print!("{}", mube_bench::experiments::fig67::run_fig7(scale));
}

//! Reproduces the §6/§7 optimizer comparison: tabu search vs stochastic
//! local search vs constrained simulated annealing vs binary PSO, with
//! equal evaluation budgets. Pass `--quick` for a scaled-down smoke run.
fn main() {
    let scale = mube_bench::Scale::from_args();
    print!("{}", mube_bench::experiments::optcmp::run(scale));
}

//! Reproduces Table 1: true GAs found / attributes covered / true GAs
//! missed, against the generator's ground truth.
//! Pass `--quick` for a scaled-down smoke run.
fn main() {
    let scale = mube_bench::Scale::from_args();
    print!("{}", mube_bench::experiments::table1::run(scale));
}

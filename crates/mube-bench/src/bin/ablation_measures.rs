//! Ablation: swap the attribute-similarity measure and score the schemas
//! against the ground truth. Pass `--quick` for a scaled-down smoke run.
fn main() {
    let scale = mube_bench::Scale::from_args();
    print!("{}", mube_bench::experiments::ablate_measures::run(scale));
}

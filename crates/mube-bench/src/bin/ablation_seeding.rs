//! Ablation: tabu starting-solution construction (random vs greedy).
//! Pass `--quick` for a scaled-down smoke run.
fn main() {
    let scale = mube_bench::Scale::from_args();
    print!("{}", mube_bench::experiments::ablate_seeding::run(scale));
}

//! Reproduces the §7.3 claim: PCSA counting error vs exact counting
//! (the paper reports a worst case of 7%).
//! Pass `--quick` for a scaled-down smoke run.
fn main() {
    let scale = mube_bench::Scale::from_args();
    print!("{}", mube_bench::experiments::pcsa::run(scale));
}

//! Reproduces Figure 5: execution time to choose 20 sources from universes
//! of 100-700 sources, with and without user constraints.
//! Pass `--quick` for a scaled-down smoke run.
fn main() {
    let scale = mube_bench::Scale::from_args();
    print!("{}", mube_bench::experiments::fig5::run(scale));
}

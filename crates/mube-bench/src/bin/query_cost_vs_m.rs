//! Extension experiment: the §1 cost argument quantified — query-time
//! transfer/duplication/makespan as the solution grows from 5 to 40
//! sources. Pass `--quick` for a scaled-down smoke run.
fn main() {
    let scale = mube_bench::Scale::from_args();
    print!("{}", mube_bench::experiments::costs::run(scale));
}

//! Reproduces Figure 8: cardinality of the chosen solution as the Card QEF
//! weight sweeps 0.1-1.0. Pass `--quick` for a scaled-down smoke run.
fn main() {
    let scale = mube_bench::Scale::from_args();
    print!("{}", mube_bench::experiments::fig8::run(scale));
}

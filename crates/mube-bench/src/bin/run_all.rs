//! Runs every experiment in sequence — regenerates all the data reported in
//! EXPERIMENTS.md. Pass `--quick` for a scaled-down smoke run.
use mube_bench::experiments::*;
use mube_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("# µBE experiment suite ({scale:?} scale)\n");
    let sweep = fig67::sweep(scale);
    for section in [
        fig5::run(scale),
        fig67::render_fig6(&sweep),
        fig67::render_fig7(&sweep),
        fig8::run(scale),
        table1::run(scale),
        pcsa::run(scale),
        perturb::run(scale),
        optcmp::run(scale),
        ablate_measures::run(scale),
        ablate_seeding::run(scale),
        costs::run(scale),
    ] {
        println!("{section}");
    }
}

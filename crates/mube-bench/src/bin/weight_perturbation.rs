//! Reproduces the §7.4 robustness experiment: perturb all QEF weights by
//! up to ±15% and diff the solutions against the baseline.
//! Pass `--quick` for a scaled-down smoke run.
fn main() {
    let scale = mube_bench::Scale::from_args();
    print!("{}", mube_bench::experiments::perturb::run(scale));
}

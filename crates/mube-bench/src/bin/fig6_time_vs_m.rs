//! Reproduces Figure 6: execution time to choose 10-50 sources from a
//! universe of 200 sources. Pass `--quick` for a scaled-down smoke run.
fn main() {
    let scale = mube_bench::Scale::from_args();
    print!("{}", mube_bench::experiments::fig67::run_fig6(scale));
}

//! Property-based tests for the PCSA sketch.

use mube_sketch::pcsa::{PcsaConfig, PcsaSignature};
use proptest::prelude::*;

fn sig_from(keys: &[u64], seed: u64) -> PcsaSignature {
    let mut s = PcsaSignature::new(PcsaConfig::new(32, 32, seed));
    for &k in keys {
        s.insert(k);
    }
    s
}

proptest! {
    /// signature(A ∪ B) == signature(A) | signature(B), exactly (not just
    /// approximately) — this is the homomorphism µBE relies on.
    #[test]
    fn union_homomorphism(a in prop::collection::vec(any::<u64>(), 0..500),
                          b in prop::collection::vec(any::<u64>(), 0..500),
                          seed in any::<u64>()) {
        let sa = sig_from(&a, seed);
        let sb = sig_from(&b, seed);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let direct = sig_from(&all, seed);
        prop_assert_eq!(sa.union(&sb).unwrap(), direct);
    }

    /// Insert order never matters.
    #[test]
    fn order_independent(mut keys in prop::collection::vec(any::<u64>(), 0..300),
                         seed in any::<u64>()) {
        let fwd = sig_from(&keys, seed);
        keys.reverse();
        let rev = sig_from(&keys, seed);
        prop_assert_eq!(fwd, rev);
    }

    /// Estimates are non-negative and zero iff empty.
    #[test]
    fn estimate_nonnegative(keys in prop::collection::vec(any::<u64>(), 0..300),
                            seed in any::<u64>()) {
        let s = sig_from(&keys, seed);
        let est = s.estimate();
        prop_assert!(est >= 0.0);
        if keys.is_empty() {
            prop_assert_eq!(est, 0.0);
        } else {
            prop_assert!(est > 0.0);
        }
    }

    /// Unioning a signature with a subset of itself changes nothing.
    #[test]
    fn union_with_subset_is_identity(keys in prop::collection::vec(any::<u64>(), 1..300),
                                     seed in any::<u64>()) {
        let full = sig_from(&keys, seed);
        let half = sig_from(&keys[..keys.len() / 2], seed);
        prop_assert_eq!(full.union(&half).unwrap(), full);
    }

    /// Estimates are monotone under union: est(A∪B) >= max(est(A), est(B))
    /// because OR can only set more bits.
    #[test]
    fn estimate_monotone_under_union(a in prop::collection::vec(any::<u64>(), 0..300),
                                     b in prop::collection::vec(any::<u64>(), 0..300),
                                     seed in any::<u64>()) {
        let sa = sig_from(&a, seed);
        let sb = sig_from(&b, seed);
        let u = sa.union(&sb).unwrap();
        prop_assert!(u.estimate() >= sa.estimate() - 1e-9);
        prop_assert!(u.estimate() >= sb.estimate() - 1e-9);
    }
}

/// Statistical accuracy check on a grid of cardinalities with a fixed seed:
/// PCSA with 256 maps should be well within 10% at these scales.
#[test]
fn accuracy_grid() {
    for &n in &[500u64, 5_000, 50_000, 200_000] {
        let mut s = PcsaSignature::new(PcsaConfig::new(256, 32, 0x5EED));
        for k in 0..n {
            s.insert(k.wrapping_mul(0x9E3779B97F4A7C15));
        }
        let est = s.estimate();
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.10, "n={n} est={est:.0} err={err:.3}");
    }
}

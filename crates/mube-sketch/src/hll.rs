//! `HyperLogLog` — the modern successor of PCSA, provided for comparison.
//!
//! The paper (2007) predates `HyperLogLog` (Flajolet et al., 2007); its
//! system uses PCSA. HLL keeps one 6-bit register per bucket (the maximum
//! leading-zero rank seen) instead of a bitmap, reaching a standard error
//! of `1.04/√m` — versus PCSA's `0.78/√m` per *word-sized* bitmap — at a
//! fraction of the space. Like PCSA it composes under union (register-wise
//! max), so it is a drop-in alternative signature for cooperating sources.
//! The `pcsa_accuracy` experiment uses it as the space/accuracy yardstick.

use crate::hash::Mix64;

/// Bias-correction constant `α_m` for `m ≥ 128`.
fn alpha(m: usize) -> f64 {
    match m {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / m as f64),
    }
}

/// A `HyperLogLog` sketch with `2^precision` registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HllSketch {
    precision: u32,
    hasher: Mix64,
    registers: Vec<u8>,
}

impl HllSketch {
    /// Creates an empty sketch. `precision` must be in `4..=16`
    /// (16–65536 registers).
    ///
    /// # Panics
    ///
    /// Panics if `precision` is out of range.
    pub fn new(precision: u32, seed: u64) -> Self {
        assert!((4..=16).contains(&precision), "precision must be in 4..=16");
        HllSketch {
            precision,
            hasher: Mix64::new(seed),
            registers: vec![0u8; 1 << precision],
        }
    }

    /// Number of registers.
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Size of the register payload in bytes.
    pub fn size_bytes(&self) -> usize {
        self.registers.len()
    }

    /// Inserts an item identified by a 64-bit key.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        let h = self.hasher.hash_u64(key);
        let bucket = (h >> (64 - self.precision)) as usize;
        let rest = h << self.precision;
        // Rank = position of the first 1-bit in the remaining bits, 1-based;
        // all-zero rest maps to the maximum rank.
        let rank = (rest.leading_zeros() + 1).min(64 - self.precision + 1) as u8;
        if rank > self.registers[bucket] {
            self.registers[bucket] = rank;
        }
    }

    /// Merges another sketch into this one (register-wise max = union).
    ///
    /// Returns `false` (leaving `self` unchanged) on precision/seed
    /// mismatch.
    pub fn union_assign(&mut self, other: &HllSketch) -> bool {
        if self.precision != other.precision || self.hasher != other.hasher {
            return false;
        }
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(b);
        }
        true
    }

    /// Returns the union of two sketches, or `None` on mismatch.
    pub fn union(&self, other: &HllSketch) -> Option<HllSketch> {
        let mut out = self.clone();
        out.union_assign(other).then_some(out)
    }

    /// Estimates the number of distinct items, with the standard
    /// small-range (linear counting) correction.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 2f64.powi(-i32::from(r)))
            .sum();
        let raw = alpha(self.registers.len()) * m * m / sum;
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                // Linear counting regime.
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(precision: u32, keys: std::ops::Range<u64>) -> HllSketch {
        let mut s = HllSketch::new(precision, 11);
        for k in keys {
            s.insert(k);
        }
        s
    }

    #[test]
    fn empty_estimates_zero() {
        let s = HllSketch::new(10, 1);
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn accuracy_across_scales() {
        for &n in &[100u64, 1_000, 10_000, 100_000, 1_000_000] {
            let s = filled(12, 0..n); // 4096 registers → ~1.6% std error
            let err = (s.estimate() - n as f64).abs() / n as f64;
            assert!(err < 0.08, "n={n} est={} err={err}", s.estimate());
        }
    }

    #[test]
    fn duplicates_are_idempotent() {
        let mut a = filled(10, 0..5_000);
        let b = a.clone();
        for k in 0..5_000u64 {
            a.insert(k);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn union_is_registerwise_max() {
        let a = filled(10, 0..10_000);
        let b = filled(10, 5_000..15_000);
        let u = a.union(&b).unwrap();
        let direct = filled(10, 0..15_000);
        assert_eq!(u, direct);
        let err = (u.estimate() - 15_000.0).abs() / 15_000.0;
        assert!(err < 0.1, "err = {err}");
    }

    #[test]
    fn union_commutative_idempotent() {
        let a = filled(8, 0..3_000);
        let b = filled(8, 1_000..4_000);
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&a).unwrap(), a);
    }

    #[test]
    fn mismatched_sketches_rejected() {
        let a = HllSketch::new(8, 1);
        let b = HllSketch::new(8, 2);
        let c = HllSketch::new(9, 1);
        assert!(a.union(&b).is_none());
        assert!(a.union(&c).is_none());
        let mut d = a.clone();
        assert!(!d.union_assign(&b));
        assert_eq!(d, a);
    }

    #[test]
    fn space_is_one_byte_per_register() {
        let s = HllSketch::new(12, 0);
        assert_eq!(s.num_registers(), 4096);
        assert_eq!(s.size_bytes(), 4096);
    }

    #[test]
    #[should_panic]
    fn precision_out_of_range_panics() {
        let _ = HllSketch::new(3, 0);
    }
}

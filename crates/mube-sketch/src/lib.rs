//! Probabilistic counting sketches for `µBE`.
//!
//! `µBE`'s coverage and redundancy quality-evaluation functions need the number
//! of *distinct* tuples in unions of data sources, without ever fetching the
//! data. The paper (§4) solves this with the Flajolet–Martin *Probabilistic
//! Counting with Stochastic Averaging* (PCSA) technique: every source computes
//! a small bitmap signature of its tuples once, the mediator caches the
//! signatures, and the signature of a union of sources is simply the bitwise
//! OR of the sources' signatures.
//!
//! This crate implements that substrate from scratch:
//!
//! * [`hash`] — seeded 64-bit mixing functions (no external crates),
//! * [`pcsa`] — the PCSA signature, OR-composition, and cardinality
//!   estimation with small-range correction,
//! * [`exact`] — an exact distinct counter used as the accuracy baseline for
//!   the paper's "worst case error of 7%" claim (§7.3).
//!
//! # Example
//!
//! ```
//! use mube_sketch::pcsa::{PcsaConfig, PcsaSignature};
//!
//! let config = PcsaConfig::new(64, 32, 0xC0FFEE);
//! let mut a = PcsaSignature::new(config.clone());
//! let mut b = PcsaSignature::new(config);
//! for t in 0..10_000u64 {
//!     a.insert(t);
//! }
//! for t in 5_000..15_000u64 {
//!     b.insert(t);
//! }
//! let union = a.union(&b).unwrap();
//! let est = union.estimate();
//! // True distinct count is 15,000; PCSA with 64 maps is typically within a
//! // few percent.
//! assert!((est - 15_000.0).abs() / 15_000.0 < 0.15);
//! ```

pub mod exact;
pub mod hash;
pub mod hll;
pub mod kmv;
pub mod pcsa;

pub use exact::ExactDistinct;
pub use hll::HllSketch;
pub use kmv::KmvSketch;
pub use pcsa::{PcsaConfig, PcsaError, PcsaSignature};

//! K-minimum-values (KMV) sketches — an alternative distinct counter with
//! native intersection support.
//!
//! PCSA (what the paper uses and what `µBE`'s QEFs run on) composes under
//! union only; intersections must go through inclusion–exclusion, whose
//! error grows with the sizes of the operands. The KMV sketch (Bar-Yossef
//! et al.) keeps the `k` smallest hash values seen; unions merge the value
//! lists, and intersections can be estimated *directly* from the Jaccard
//! similarity of the synopses — much tighter for small overlaps. Provided
//! as an extension for overlap-heavy diagnostics; not used by the paper's
//! experiments.

use crate::hash::Mix64;

/// A KMV synopsis: the `k` smallest 64-bit hash values of the inserted
/// items, kept sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmvSketch {
    k: usize,
    hasher: Mix64,
    /// Sorted ascending, no duplicates, length ≤ k.
    values: Vec<u64>,
}

impl KmvSketch {
    /// Creates an empty sketch keeping the `k` smallest hashes.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        KmvSketch {
            k,
            hasher: Mix64::new(seed),
            values: Vec::with_capacity(k),
        }
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Inserts an item.
    pub fn insert(&mut self, key: u64) {
        let h = self.hasher.hash_u64(key);
        match self.values.binary_search(&h) {
            Ok(_) => {} // duplicate hash: same item (or a collision), skip
            Err(pos) => {
                if pos < self.k {
                    self.values.insert(pos, h);
                    self.values.truncate(self.k);
                }
            }
        }
    }

    /// Number of distinct items inserted, estimated as `(k − 1)·2⁶⁴ / v_k`
    /// when the sketch is full, or exactly `|values|` when it never filled.
    pub fn estimate(&self) -> f64 {
        if self.values.len() < self.k {
            return self.values.len() as f64;
        }
        let vk = *self.values.last().expect("full sketch is non-empty");
        if vk == 0 {
            return self.values.len() as f64;
        }
        (self.k as f64 - 1.0) * (u64::MAX as f64) / vk as f64
    }

    /// Merges two sketches into the sketch of the union.
    ///
    /// Both must share `k` and the hash seed; returns `None` otherwise.
    pub fn union(&self, other: &KmvSketch) -> Option<KmvSketch> {
        if self.k != other.k || self.hasher != other.hasher {
            return None;
        }
        let mut merged = Vec::with_capacity(self.k);
        let (mut i, mut j) = (0usize, 0usize);
        while merged.len() < self.k && (i < self.values.len() || j < other.values.len()) {
            let next = match (self.values.get(i), other.values.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                    a
                }
                (Some(&a), Some(&b)) if a < b => {
                    i += 1;
                    a
                }
                (Some(_), Some(&b)) => {
                    j += 1;
                    b
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => unreachable!("loop condition"),
            };
            merged.push(next);
        }
        Some(KmvSketch {
            k: self.k,
            hasher: self.hasher,
            values: merged,
        })
    }

    /// Estimated Jaccard similarity `|A∩B| / |A∪B|`: the fraction of the
    /// union synopsis's values present in both sketches.
    pub fn jaccard(&self, other: &KmvSketch) -> Option<f64> {
        let union = self.union(other)?;
        if union.values.is_empty() {
            return Some(1.0); // both empty
        }
        let in_both = union
            .values
            .iter()
            .filter(|v| {
                self.values.binary_search(v).is_ok() && other.values.binary_search(v).is_ok()
            })
            .count();
        Some(in_both as f64 / union.values.len() as f64)
    }

    /// Estimated intersection cardinality: `jaccard × |A∪B|`.
    pub fn intersection_estimate(&self, other: &KmvSketch) -> Option<f64> {
        let union = self.union(other)?;
        Some(self.jaccard(other)? * union.estimate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(keys: std::ops::Range<u64>) -> KmvSketch {
        let mut s = KmvSketch::new(256, 9);
        for k in keys {
            s.insert(k);
        }
        s
    }

    #[test]
    fn small_sets_are_exact() {
        let s = filled(0..100);
        assert_eq!(s.estimate(), 100.0);
    }

    #[test]
    fn large_sets_estimate_within_bounds() {
        for &n in &[5_000u64, 50_000, 500_000] {
            let s = filled(0..n);
            let err = (s.estimate() - n as f64).abs() / n as f64;
            assert!(err < 0.2, "n={n} est={} err={err}", s.estimate());
        }
    }

    #[test]
    fn duplicates_do_not_count() {
        let mut s = KmvSketch::new(64, 1);
        for _ in 0..10 {
            for k in 0..50u64 {
                s.insert(k);
            }
        }
        assert_eq!(s.estimate(), 50.0);
    }

    #[test]
    fn union_equals_direct_sketch() {
        let a = filled(0..10_000);
        let b = filled(5_000..15_000);
        let u = a.union(&b).unwrap();
        let direct = filled(0..15_000);
        assert_eq!(u, direct);
    }

    #[test]
    fn mismatched_sketches_rejected() {
        let a = KmvSketch::new(64, 1);
        let b = KmvSketch::new(64, 2);
        let c = KmvSketch::new(128, 1);
        assert!(a.union(&b).is_none());
        assert!(a.union(&c).is_none());
        assert!(a.jaccard(&b).is_none());
    }

    #[test]
    fn jaccard_tracks_true_overlap() {
        // |A∩B| = 10k, |A∪B| = 30k → J = 1/3.
        let a = filled(0..20_000);
        let b = filled(10_000..30_000);
        let j = a.jaccard(&b).unwrap();
        assert!((j - 1.0 / 3.0).abs() < 0.12, "jaccard = {j}");
        // Disjoint sets.
        let c = filled(100_000..120_000);
        assert!(a.jaccard(&c).unwrap() < 0.05);
        // Identical sets.
        assert!((a.jaccard(&a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_estimate_tracks_truth() {
        let a = filled(0..20_000);
        let b = filled(10_000..30_000);
        let est = a.intersection_estimate(&b).unwrap();
        let err = (est - 10_000.0).abs() / 10_000.0;
        assert!(err < 0.35, "est = {est}");
    }

    #[test]
    fn empty_sketches() {
        let a = KmvSketch::new(16, 3);
        let b = KmvSketch::new(16, 3);
        assert_eq!(a.estimate(), 0.0);
        assert_eq!(a.jaccard(&b), Some(1.0));
        assert_eq!(a.union(&b).unwrap().estimate(), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        let _ = KmvSketch::new(0, 1);
    }
}

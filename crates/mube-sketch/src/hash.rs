//! Seeded 64-bit hash functions.
//!
//! PCSA needs a family of independent hash functions: one per signature
//! configuration, derived from a user-supplied seed so that signatures built
//! independently (e.g. by different data sources) are OR-composable as long as
//! they agree on the seed. We use the `splitmix64` finalizer, a well-studied
//! mixer with full avalanche behaviour, and FNV-1a for hashing byte strings
//! down to a 64-bit key first.

/// A seeded 64-bit hash function based on the `splitmix64` finalizer.
///
/// Two `Mix64` values with the same seed hash identically; different seeds
/// give effectively independent functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix64 {
    seed: u64,
}

impl Mix64 {
    /// Creates a hash function for the given seed.
    pub fn new(seed: u64) -> Self {
        Mix64 { seed }
    }

    /// The seed this function was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Hashes a 64-bit key.
    #[inline]
    pub fn hash_u64(&self, key: u64) -> u64 {
        // splitmix64 finalizer applied to the key offset by a seed-derived
        // odd constant (the golden-ratio increment used by splitmix64).
        let mut z = key.wrapping_add(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Hashes a byte string by first folding it to 64 bits with FNV-1a and
    /// then mixing.
    #[inline]
    pub fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        self.hash_u64(fnv1a64(bytes))
    }
}

/// FNV-1a hash of a byte string (64-bit variant).
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_hash() {
        let a = Mix64::new(42);
        let b = Mix64::new(42);
        for k in [0u64, 1, 17, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(a.hash_u64(k), b.hash_u64(k));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Mix64::new(1);
        let b = Mix64::new(2);
        // Not a guarantee for every key, but these must not be identical
        // functions.
        let same = (0..1000u64)
            .filter(|&k| a.hash_u64(k) == b.hash_u64(k))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn avalanche_rough_check() {
        // Flipping one input bit should flip roughly half the output bits on
        // average. We tolerate a generous band since this is a sanity check,
        // not a statistical test.
        let h = Mix64::new(7);
        let mut total_flips = 0u32;
        let trials = 256;
        for k in 0..trials as u64 {
            let base = h.hash_u64(k);
            let flipped = h.hash_u64(k ^ 1);
            total_flips += (base ^ flipped).count_ones();
        }
        let avg = f64::from(total_flips) / f64::from(trials);
        assert!(avg > 24.0 && avg < 40.0, "avg bit flips = {avg}");
    }

    #[test]
    fn fnv_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn hash_bytes_consistent_with_u64_path() {
        let h = Mix64::new(3);
        assert_eq!(h.hash_bytes(b"abc"), h.hash_u64(fnv1a64(b"abc")));
    }
}

//! Exact distinct counting, the baseline PCSA is evaluated against.
//!
//! The paper reports (§7.3) that the probabilistic counting algorithm had "a
//! worst case error of 7% compared to exact counting". This module provides
//! the exact counter used by the `pcsa_accuracy` experiment to reproduce that
//! comparison; it is also handy in tests.

use std::collections::HashSet;

/// An exact distinct-element counter over 64-bit keys.
#[derive(Debug, Clone, Default)]
pub struct ExactDistinct {
    seen: HashSet<u64>,
}

impl ExactDistinct {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key; returns true if it was new.
    pub fn insert(&mut self, key: u64) -> bool {
        self.seen.insert(key)
    }

    /// Number of distinct keys inserted.
    pub fn count(&self) -> u64 {
        self.seen.len() as u64
    }

    /// Merges another counter into this one (set union).
    pub fn union_assign(&mut self, other: &ExactDistinct) {
        self.seen.extend(other.seen.iter().copied());
    }

    /// Returns the union of two counters.
    pub fn union(&self, other: &ExactDistinct) -> ExactDistinct {
        let mut out = self.clone();
        out.union_assign(other);
        out
    }

    /// Iterates over the distinct keys (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.seen.iter().copied()
    }
}

impl FromIterator<u64> for ExactDistinct {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        ExactDistinct {
            seen: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_distinct_only() {
        let mut c = ExactDistinct::new();
        assert!(c.insert(1));
        assert!(!c.insert(1));
        assert!(c.insert(2));
        assert_eq!(c.count(), 2);
    }

    #[test]
    fn union_matches_set_semantics() {
        let a: ExactDistinct = (0..100u64).collect();
        let b: ExactDistinct = (50..150u64).collect();
        assert_eq!(a.union(&b).count(), 150);
    }

    #[test]
    fn union_assign_is_idempotent() {
        let mut a: ExactDistinct = (0..10u64).collect();
        let b = a.clone();
        a.union_assign(&b);
        assert_eq!(a.count(), 10);
    }
}

//! Flajolet–Martin Probabilistic Counting with Stochastic Averaging (PCSA).
//!
//! A PCSA signature is a small array of bitmaps. Each inserted item is hashed;
//! the low bits of the hash pick one of the bitmaps (stochastic averaging) and
//! the position of the lowest set bit of the remaining hash bits picks which
//! bit of that bitmap to set. The number of distinct items is estimated from
//! the average position of the lowest *unset* bit across the bitmaps.
//!
//! The key property `µBE` exploits (§4 of the paper): the signature of a
//! multiset union is the bitwise OR of the signatures, so sources can compute
//! their signatures independently and the mediator can estimate the
//! cardinality of any union of sources without touching the data.

use crate::hash::Mix64;

/// Flajolet–Martin's bias correction constant (the "magic constant" φ).
const PHI: f64 = 0.77351;

/// Configuration shared by OR-composable signatures.
///
/// Two signatures can only be combined if they were built with identical
/// configurations (same number of maps, same map width, same hash seed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcsaConfig {
    num_maps: usize,
    map_bits: u32,
    hasher: Mix64,
}

impl PcsaConfig {
    /// Creates a configuration.
    ///
    /// `num_maps` must be a power of two (so bucket selection is a mask) and
    /// `map_bits` must be in `1..=64`. More maps reduce estimation variance
    /// (standard error ≈ `0.78/√num_maps`); wider maps raise the maximum
    /// countable cardinality (≈ `num_maps * 2^map_bits`).
    ///
    /// # Panics
    ///
    /// Panics if `num_maps` is zero or not a power of two, or `map_bits` is
    /// not in `1..=64`.
    pub fn new(num_maps: usize, map_bits: u32, seed: u64) -> Self {
        assert!(
            num_maps.is_power_of_two() && num_maps > 0,
            "num_maps must be a nonzero power of two, got {num_maps}"
        );
        assert!(
            (1..=64).contains(&map_bits),
            "map_bits must be in 1..=64, got {map_bits}"
        );
        PcsaConfig {
            num_maps,
            map_bits,
            hasher: Mix64::new(seed),
        }
    }

    /// A configuration suitable for the paper's workloads: 64 maps of 32 bits
    /// (512 bytes per source), good for cardinalities up to billions with
    /// ~10% standard error.
    pub fn default_for_sources(seed: u64) -> Self {
        PcsaConfig::new(64, 32, seed)
    }

    /// Number of bitmaps.
    pub fn num_maps(&self) -> usize {
        self.num_maps
    }

    /// Width of each bitmap in bits.
    pub fn map_bits(&self) -> u32 {
        self.map_bits
    }

    /// The hash seed.
    pub fn seed(&self) -> u64 {
        self.hasher.seed()
    }
}

/// Errors from combining signatures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcsaError {
    /// The two signatures were built with different configurations and are
    /// not OR-composable.
    ConfigMismatch,
}

impl std::fmt::Display for PcsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcsaError::ConfigMismatch => {
                write!(f, "PCSA signatures have mismatched configurations")
            }
        }
    }
}

impl std::error::Error for PcsaError {}

/// A PCSA signature: `num_maps` bitmaps of `map_bits` bits each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcsaSignature {
    config: PcsaConfig,
    maps: Vec<u64>,
}

impl PcsaSignature {
    /// Creates an empty signature.
    pub fn new(config: PcsaConfig) -> Self {
        let maps = vec![0u64; config.num_maps];
        PcsaSignature { config, maps }
    }

    /// The configuration of this signature.
    pub fn config(&self) -> &PcsaConfig {
        &self.config
    }

    /// Inserts an item identified by a 64-bit key.
    ///
    /// Inserting the same key twice is a no-op on the estimate — only
    /// distinct keys matter, which is exactly what `µBE` needs.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        let h = self.config.hasher.hash_u64(key);
        let bucket = (h as usize) & (self.config.num_maps - 1);
        let rest = h >> self.config.num_maps.trailing_zeros();
        // Position of the lowest set bit of the remaining hash bits, i.e. a
        // geometric random variable. If all remaining bits are zero, clamp to
        // the top bit of the map.
        let r = if rest == 0 {
            self.config.map_bits - 1
        } else {
            rest.trailing_zeros()
        };
        let r = r.min(self.config.map_bits - 1);
        self.maps[bucket] |= 1u64 << r;
    }

    /// Inserts an item identified by its byte representation.
    #[inline]
    pub fn insert_bytes(&mut self, bytes: &[u8]) {
        let key = crate::hash::fnv1a64(bytes);
        self.insert(key);
    }

    /// Returns the OR-union of two signatures, the signature of the union of
    /// the underlying multisets.
    pub fn union(&self, other: &PcsaSignature) -> Result<PcsaSignature, PcsaError> {
        let mut out = self.clone();
        out.union_assign(other)?;
        Ok(out)
    }

    /// ORs `other` into `self` in place.
    pub fn union_assign(&mut self, other: &PcsaSignature) -> Result<(), PcsaError> {
        if self.config != other.config {
            return Err(PcsaError::ConfigMismatch);
        }
        for (a, b) in self.maps.iter_mut().zip(&other.maps) {
            *a |= *b;
        }
        Ok(())
    }

    /// True if no item has ever been inserted.
    pub fn is_empty(&self) -> bool {
        self.maps.iter().all(|&m| m == 0)
    }

    /// Estimates the number of distinct items inserted.
    ///
    /// Uses Flajolet–Martin's estimator `(m/φ)·2^A` where `A` is the mean
    /// index of the lowest unset bit across the `m` bitmaps, with the
    /// small-cardinality correction `(m/φ)·(2^A − 2^(−1.75·A))` from the
    /// original paper's analysis, which removes most of the bias when the
    /// count is comparable to the number of maps.
    pub fn estimate(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let m = self.config.num_maps as f64;
        let sum_r: u32 = self
            .maps
            .iter()
            .map(|&map| lowest_unset_bit(map, self.config.map_bits))
            .sum();
        let a = f64::from(sum_r) / m;
        let est = (m / PHI) * (2f64.powf(a) - 2f64.powf(-1.75 * a));
        // The correction term makes the estimate collapse to 0 when no bitmap
        // happens to have bit 0 set; a nonempty signature holds at least one
        // item, so floor at 1.
        est.max(1.0)
    }

    /// Size of the signature payload in bytes.
    pub fn size_bytes(&self) -> usize {
        self.maps.len() * std::mem::size_of::<u64>()
    }

    /// Raw access to the bitmaps (for serialization / diagnostics).
    pub fn maps(&self) -> &[u64] {
        &self.maps
    }

    /// Reconstructs a signature from raw bitmaps, e.g. one shipped by a
    /// cooperating data source.
    ///
    /// Returns `None` if the number of maps disagrees with the configuration
    /// or any bitmap uses bits beyond `map_bits`.
    pub fn from_maps(config: PcsaConfig, maps: Vec<u64>) -> Option<Self> {
        if maps.len() != config.num_maps {
            return None;
        }
        if config.map_bits < 64 {
            let mask = !((1u64 << config.map_bits) - 1);
            if maps.iter().any(|&m| m & mask != 0) {
                return None;
            }
        }
        Some(PcsaSignature { config, maps })
    }
}

/// Index of the lowest unset bit of `map`, clamped to `bits`.
#[inline]
fn lowest_unset_bit(map: u64, bits: u32) -> u32 {
    let r = (!map).trailing_zeros();
    r.min(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PcsaConfig {
        PcsaConfig::new(64, 32, 0xABCD)
    }

    #[test]
    fn empty_estimates_zero() {
        let sig = PcsaSignature::new(config());
        assert_eq!(sig.estimate(), 0.0);
        assert!(sig.is_empty());
    }

    #[test]
    fn duplicate_inserts_are_idempotent() {
        let mut a = PcsaSignature::new(config());
        let mut b = PcsaSignature::new(config());
        for k in 0..1000u64 {
            a.insert(k);
            b.insert(k);
            b.insert(k); // duplicate
        }
        assert_eq!(a, b);
    }

    #[test]
    fn estimate_accuracy_at_several_scales() {
        for &n in &[1_000u64, 10_000, 100_000] {
            let mut sig = PcsaSignature::new(config());
            for k in 0..n {
                sig.insert(k);
            }
            let est = sig.estimate();
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.25, "n={n} est={est} err={err}");
        }
    }

    #[test]
    fn union_is_or_of_maps() {
        let mut a = PcsaSignature::new(config());
        let mut b = PcsaSignature::new(config());
        for k in 0..5000u64 {
            a.insert(k);
        }
        for k in 2500..7500u64 {
            b.insert(k);
        }
        let u = a.union(&b).unwrap();
        // Property: inserting everything into one signature gives exactly the
        // same bitmaps as OR-ing the two halves.
        let mut direct = PcsaSignature::new(config());
        for k in 0..7500u64 {
            direct.insert(k);
        }
        assert_eq!(u, direct);
    }

    #[test]
    fn union_rejects_mismatched_configs() {
        let a = PcsaSignature::new(PcsaConfig::new(64, 32, 1));
        let b = PcsaSignature::new(PcsaConfig::new(64, 32, 2));
        assert_eq!(a.union(&b), Err(PcsaError::ConfigMismatch));
        let c = PcsaSignature::new(PcsaConfig::new(32, 32, 1));
        assert_eq!(a.union(&c), Err(PcsaError::ConfigMismatch));
    }

    #[test]
    fn union_is_commutative_and_idempotent() {
        let mut a = PcsaSignature::new(config());
        let mut b = PcsaSignature::new(config());
        for k in 0..1000u64 {
            a.insert(k * 3);
            b.insert(k * 7);
        }
        assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
        assert_eq!(a.union(&a).unwrap(), a);
    }

    #[test]
    fn from_maps_validates() {
        let cfg = PcsaConfig::new(4, 8, 0);
        assert!(PcsaSignature::from_maps(cfg.clone(), vec![0; 4]).is_some());
        assert!(PcsaSignature::from_maps(cfg.clone(), vec![0; 3]).is_none());
        // Bit 8 is out of range for an 8-bit map.
        assert!(PcsaSignature::from_maps(cfg, vec![1 << 8, 0, 0, 0]).is_none());
    }

    #[test]
    fn insert_bytes_distinguishes_strings() {
        let mut sig = PcsaSignature::new(config());
        sig.insert_bytes(b"tuple-1");
        sig.insert_bytes(b"tuple-2");
        assert!(!sig.is_empty());
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_maps_panics() {
        let _ = PcsaConfig::new(63, 32, 0);
    }

    #[test]
    #[should_panic]
    fn zero_map_bits_panics() {
        let _ = PcsaConfig::new(64, 0, 0);
    }

    #[test]
    fn size_bytes_reports_payload() {
        let sig = PcsaSignature::new(PcsaConfig::new(64, 32, 0));
        assert_eq!(sig.size_bytes(), 64 * 8);
    }
}

//! Plain-text catalogs of source descriptions.
//!
//! `µBE`'s input is "the descriptions of a large number of data sources,
//! their schemas, their data characteristics, and other source
//! characteristics" (§1), obtained from a source-discovery mechanism or
//! provided by the user. This module defines a simple line-oriented text
//! format for such catalogs so universes can be stored in files, diffed,
//! and hand-edited:
//!
//! ```text
//! # comments and blank lines are ignored
//! source tonyawards.com
//!   attr keywords
//!   cardinality 12000
//!   characteristic mttf 93.5
//!   signature 64 32 1234abcd 0f 1a ... (num_maps hex words)
//! ```
//!
//! Every `source` line starts a new source; the indented lines describe it.
//! The `signature` line carries the PCSA configuration (`num_maps`,
//! `map_bits`, hex seed) followed by one hex word per bitmap, exactly what
//! a cooperating source would publish.

use std::fmt::Write as _;

use mube_sketch::pcsa::{PcsaConfig, PcsaSignature};

use crate::error::MubeError;
use crate::schema::Schema;
use crate::source::{SourceSpec, Universe};

/// Serializes a universe to catalog text.
pub fn to_text(universe: &Universe) -> String {
    let mut out = String::new();
    for source in universe.sources() {
        writeln!(out, "source {}", source.name()).expect("string write");
        for (_, attr) in source.schema().iter() {
            writeln!(out, "  attr {}", attr.name()).expect("string write");
        }
        writeln!(out, "  cardinality {}", source.cardinality()).expect("string write");
        for (name, value) in source.characteristics() {
            writeln!(out, "  characteristic {name} {value}").expect("string write");
        }
        if let Some(sig) = source.signature() {
            let cfg = sig.config();
            write!(
                out,
                "  signature {} {} {:x}",
                cfg.num_maps(),
                cfg.map_bits(),
                cfg.seed()
            )
            .expect("string write");
            for map in sig.maps() {
                write!(out, " {map:x}").expect("string write");
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Parses catalog text into a universe.
///
/// Fails with a descriptive [`MubeError::InvalidParameter`] on malformed
/// lines, and with the usual builder errors (empty universe/schema,
/// mismatched signature configurations) at the end.
pub fn from_text(text: &str) -> Result<Universe, MubeError> {
    let mut builder = Universe::builder();
    let mut current: Option<PendingSource> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("non-empty line has a first word");
        let err = |detail: String| MubeError::InvalidParameter {
            detail: format!("catalog line {}: {detail}", lineno + 1),
        };
        match keyword {
            "source" => {
                let name: Vec<&str> = words.collect();
                if name.is_empty() {
                    return Err(err("`source` needs a name".into()));
                }
                if let Some(done) = current.take() {
                    builder.add_source(done.into_spec());
                }
                current = Some(PendingSource::new(name.join(" ")));
            }
            "attr" => {
                let pending = current
                    .as_mut()
                    .ok_or_else(|| err("`attr` before any `source`".into()))?;
                let name: Vec<&str> = words.collect();
                if name.is_empty() {
                    return Err(err("`attr` needs a name".into()));
                }
                pending.attrs.push(name.join(" "));
            }
            "cardinality" => {
                let pending = current
                    .as_mut()
                    .ok_or_else(|| err("`cardinality` before any `source`".into()))?;
                let value = words
                    .next()
                    .and_then(|w| w.parse::<u64>().ok())
                    .ok_or_else(|| err("`cardinality` needs an unsigned integer".into()))?;
                pending.cardinality = value;
            }
            "characteristic" => {
                let pending = current
                    .as_mut()
                    .ok_or_else(|| err("`characteristic` before any `source`".into()))?;
                let name = words
                    .next()
                    .ok_or_else(|| err("`characteristic` needs a name and value".into()))?;
                let value = words
                    .next()
                    .and_then(|w| w.parse::<f64>().ok())
                    .ok_or_else(|| err("`characteristic` needs a numeric value".into()))?;
                pending.characteristics.push((name.to_string(), value));
            }
            "signature" => {
                let pending = current
                    .as_mut()
                    .ok_or_else(|| err("`signature` before any `source`".into()))?;
                let num_maps = words
                    .next()
                    .and_then(|w| w.parse::<usize>().ok())
                    .ok_or_else(|| err("`signature` needs num_maps".into()))?;
                let map_bits = words
                    .next()
                    .and_then(|w| w.parse::<u32>().ok())
                    .ok_or_else(|| err("`signature` needs map_bits".into()))?;
                let seed = words
                    .next()
                    .and_then(|w| u64::from_str_radix(w, 16).ok())
                    .ok_or_else(|| err("`signature` needs a hex seed".into()))?;
                let maps: Result<Vec<u64>, _> = words.map(|w| u64::from_str_radix(w, 16)).collect();
                let maps = maps.map_err(|_| err("signature bitmaps must be hex".into()))?;
                if num_maps == 0 || !num_maps.is_power_of_two() || !(1..=64).contains(&map_bits) {
                    return Err(err(format!(
                        "invalid signature configuration {num_maps}x{map_bits}"
                    )));
                }
                let config = PcsaConfig::new(num_maps, map_bits, seed);
                let sig = PcsaSignature::from_maps(config, maps)
                    .ok_or_else(|| err("signature bitmaps inconsistent with config".into()))?;
                pending.signature = Some(sig);
            }
            other => return Err(err(format!("unknown keyword `{other}`"))),
        }
    }
    if let Some(done) = current.take() {
        builder.add_source(done.into_spec());
    }
    builder.build()
}

struct PendingSource {
    name: String,
    attrs: Vec<String>,
    cardinality: u64,
    characteristics: Vec<(String, f64)>,
    signature: Option<PcsaSignature>,
}

impl PendingSource {
    fn new(name: String) -> Self {
        PendingSource {
            name,
            attrs: Vec::new(),
            cardinality: 0,
            characteristics: Vec::new(),
            signature: None,
        }
    }

    fn into_spec(self) -> SourceSpec {
        let mut spec = SourceSpec::new(self.name, Schema::new(self.attrs));
        spec = spec.cardinality(self.cardinality);
        for (name, value) in self.characteristics {
            spec = spec.characteristic(name, value);
        }
        if let Some(sig) = self.signature {
            spec = spec.signature(sig);
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SourceId;

    fn sample_universe() -> Universe {
        let mut sig = PcsaSignature::new(PcsaConfig::new(4, 16, 0xAB));
        for k in 0..100u64 {
            sig.insert(k);
        }
        let mut b = Universe::builder();
        b.add_source(
            SourceSpec::new("tonyawards.com", Schema::new(["keywords"]))
                .cardinality(12_000)
                .characteristic("mttf", 93.5)
                .signature(sig),
        );
        b.add_source(SourceSpec::new(
            "aceticket.com",
            Schema::new(["state", "city", "event name"]),
        ));
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let u = sample_universe();
        let text = to_text(&u);
        let back = from_text(&text).unwrap();
        assert_eq!(back.len(), u.len());
        for (a, b) in u.sources().zip(back.sources()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.schema(), b.schema());
            assert_eq!(a.cardinality(), b.cardinality());
            assert_eq!(a.characteristics(), b.characteristics());
            assert_eq!(a.signature(), b.signature());
        }
    }

    #[test]
    fn multiword_names_survive() {
        let u = sample_universe();
        let text = to_text(&u);
        let back = from_text(&text).unwrap();
        assert_eq!(
            back.attr_name(crate::ids::AttrId::new(SourceId(1), 2)),
            Some("event name")
        );
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a catalog\n\nsource x\n  attr a\n\n# done\n";
        let u = from_text(text).unwrap();
        assert_eq!(u.len(), 1);
        assert_eq!(u.source(SourceId(0)).name(), "x");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "source x\n  attr a\n  cardinality oops\n";
        let err = from_text(text).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn attr_before_source_rejected() {
        assert!(from_text("attr a\n").is_err());
    }

    #[test]
    fn unknown_keyword_rejected() {
        assert!(from_text("source x\n  attr a\n  frobnicate 3\n").is_err());
    }

    #[test]
    fn bad_signature_rejected() {
        // 3 maps claimed but config says 4.
        let text = "source x\n  attr a\n  signature 4 16 ab 1 2 3\n";
        assert!(from_text(text).is_err());
        // Non-power-of-two maps.
        let text = "source x\n  attr a\n  signature 3 16 ab 1 2 3\n";
        assert!(from_text(text).is_err());
    }

    #[test]
    fn empty_catalog_rejected() {
        assert!(matches!(
            from_text("# nothing\n"),
            Err(MubeError::EmptyUniverse)
        ));
    }

    #[test]
    fn source_without_attrs_rejected() {
        assert!(from_text("source x\n  cardinality 5\n").is_err());
    }
}

//! Quality Evaluation Functions (QEFs) and their weighting (§2.3).
//!
//! A QEF maps a candidate solution — a set of sources plus the mediated
//! schema generated on them — to a quality score in `[0, 1]`, higher is
//! better. `µBE` combines the QEFs into an overall quality
//! `Q(S) = Σ w_i · F_i(S)` with user-chosen weights that are each in `[0, 1]`
//! and sum to 1.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::error::MubeError;
use crate::ga::MediatedSchema;
use crate::ids::SourceId;
use crate::source::Universe;

/// Universe-wide quantities precomputed once per problem so that QEF
/// evaluation inside the optimizer's inner loop is cheap.
#[derive(Debug, Clone)]
pub struct EvalContext {
    /// Σ_{t∈U} |t| — total tuple count of the universe.
    pub universe_cardinality: u64,
    /// Estimated |∪_{t∈U} t| — distinct tuples across the whole universe
    /// (from OR-ing all cooperating sources' signatures).
    pub universe_distinct: f64,
    /// Per-characteristic (min, max) over the universe, for normalization.
    pub characteristic_ranges: std::collections::BTreeMap<String, (f64, f64)>,
}

impl EvalContext {
    /// Precomputes the context for a universe.
    pub fn for_universe(universe: &Universe) -> Self {
        let universe_cardinality = universe.total_cardinality();
        let mut union_sig: Option<mube_sketch::PcsaSignature> = None;
        for s in universe.sources() {
            if let Some(sig) = s.signature() {
                match &mut union_sig {
                    None => union_sig = Some(sig.clone()),
                    Some(u) => {
                        // Builder guarantees matching configs.
                        u.union_assign(sig)
                            .expect("universe signatures are config-checked");
                    }
                }
            }
        }
        let universe_distinct = union_sig.map_or(0.0, |s| s.estimate());

        let mut characteristic_ranges = std::collections::BTreeMap::new();
        for s in universe.sources() {
            for (name, &v) in s.characteristics() {
                characteristic_ranges
                    .entry(name.clone())
                    .and_modify(|(lo, hi): &mut (f64, f64)| {
                        *lo = lo.min(v);
                        *hi = hi.max(v);
                    })
                    .or_insert((v, v));
            }
        }
        EvalContext {
            universe_cardinality,
            universe_distinct,
            characteristic_ranges,
        }
    }
}

/// What a QEF sees when scoring one candidate.
#[derive(Debug, Clone, Copy)]
pub struct EvalInput<'a> {
    /// The universe of all sources.
    pub universe: &'a Universe,
    /// The candidate source selection `S`.
    pub sources: &'a BTreeSet<SourceId>,
    /// The mediated schema the matcher produced on `S` (after β filtering).
    pub schema: &'a MediatedSchema,
    /// `F_1`: the matching quality the matcher reported for `schema`.
    pub match_quality: f64,
}

/// How a QEF's score can be maintained incrementally under add-source /
/// drop-source moves. [`crate::delta::DeltaEval`] uses this to pick, per
/// QEF, a running-state update rule whose result is bitwise-identical to
/// calling [`Qef::evaluate`] from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaClass {
    /// Reads only `input.match_quality` (F1). The delta layer supplies the
    /// memoized matcher output.
    MatchQuality,
    /// A ratio of the selection's summed tuple counts over the universe
    /// total (F2). Maintained as an exact `u64` running sum.
    SelectedCardinality,
    /// A PCSA-union distinct estimate over the universe distinct count
    /// (F3). Maintained as an incrementally OR-ed signature.
    UnionCoverage,
    /// The duplicated-mass score derived from the cooperating sources'
    /// union estimate (F4). Shares the running union with coverage.
    UnionRedundancy,
    /// Depends only on the selected source ids and the universe — never on
    /// the mediated schema or match quality. Re-evaluated directly at
    /// `O(|S|)` (`|S| ≤ m`), which is already independent of the schema
    /// work the delta layer avoids.
    SelectionOnly,
    /// May read anything, including the mediated schema. Forces the delta
    /// layer down the full evaluation path for the whole candidate.
    Opaque,
}

/// A quality dimension. Implementations must return values in `[0, 1]`.
pub trait Qef: Send + Sync {
    /// Stable name used for weight lookup and reporting ("matching",
    /// "cardinality", "coverage", "redundancy", "mttf", ...).
    fn name(&self) -> &str;

    /// Scores one candidate.
    fn evaluate(&self, ctx: &EvalContext, input: &EvalInput<'_>) -> f64;

    /// Declares which incremental update rule reproduces this QEF exactly.
    /// The conservative default forces full re-evaluation; built-in QEFs
    /// override it. Implementations must only claim a class whose
    /// contract they actually satisfy — the differential test harness in
    /// `tests/solver_differential.rs` checks bitwise agreement.
    fn delta_class(&self) -> DeltaClass {
        DeltaClass::Opaque
    }
}

/// A weighted set of QEFs defining the overall quality `Q(S)`.
#[derive(Clone)]
pub struct WeightedQefs {
    entries: Vec<(Arc<dyn Qef>, f64)>,
}

impl std::fmt::Debug for WeightedQefs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<_> = self
            .entries
            .iter()
            .map(|(q, w)| format!("{}={:.3}", q.name(), w))
            .collect();
        write!(f, "WeightedQefs({})", names.join(", "))
    }
}

/// Tolerance for the weights-sum-to-one check, to forgive floating-point
/// artifacts in user-entered weights.
const WEIGHT_SUM_TOLERANCE: f64 = 1e-6;

impl WeightedQefs {
    /// Builds a weighted QEF set, validating the weights: each in `[0, 1]`,
    /// summing to 1, one per QEF, and no duplicate QEF names.
    pub fn new(entries: Vec<(Arc<dyn Qef>, f64)>) -> Result<Self, MubeError> {
        if entries.is_empty() {
            return Err(MubeError::InvalidWeights {
                detail: "no QEFs given".into(),
            });
        }
        let mut sum = 0.0;
        let mut names = BTreeSet::new();
        for (q, w) in &entries {
            if !(0.0..=1.0).contains(w) {
                return Err(MubeError::InvalidWeights {
                    detail: format!("weight for `{}` is {w}, outside [0,1]", q.name()),
                });
            }
            if !names.insert(q.name().to_string()) {
                return Err(MubeError::InvalidWeights {
                    detail: format!("duplicate QEF name `{}`", q.name()),
                });
            }
            sum += w;
        }
        if (sum - 1.0).abs() > WEIGHT_SUM_TOLERANCE {
            return Err(MubeError::InvalidWeights {
                detail: format!("weights sum to {sum}, expected 1"),
            });
        }
        Ok(WeightedQefs { entries })
    }

    /// Number of QEFs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no QEFs (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(qef, weight)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Arc<dyn Qef>, f64)> {
        self.entries.iter().map(|(q, w)| (q, *w))
    }

    /// The weight of a named QEF.
    pub fn weight_of(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(q, _)| q.name() == name)
            .map(|(_, w)| *w)
    }

    /// Returns a copy with the named QEF's weight set to `weight` and all
    /// other weights rescaled proportionally so the sum stays 1. This is the
    /// convenient "turn this dimension up/down" knob for session feedback.
    pub fn reweighted(&self, name: &str, weight: f64) -> Result<Self, MubeError> {
        if !(0.0..=1.0).contains(&weight) {
            return Err(MubeError::InvalidWeights {
                detail: format!("weight {weight} outside [0,1]"),
            });
        }
        let old = self
            .weight_of(name)
            .ok_or_else(|| MubeError::UnknownQef { name: name.into() })?;
        let others_old: f64 = 1.0 - old;
        let others_new: f64 = 1.0 - weight;
        let entries = self
            .entries
            .iter()
            .map(|(q, w)| {
                let nw = if q.name() == name {
                    weight
                } else if others_old <= WEIGHT_SUM_TOLERANCE {
                    // Old weight was 1; spread the remainder evenly.
                    others_new / (self.entries.len() - 1) as f64
                } else {
                    w * others_new / others_old
                };
                (Arc::clone(q), nw)
            })
            .collect();
        WeightedQefs::new(entries)
    }

    /// Returns a copy with all weights replaced. `weights` must be given in
    /// the same order as the QEFs and satisfy the usual validity rules.
    pub fn with_weights(&self, weights: &[f64]) -> Result<Self, MubeError> {
        if weights.len() != self.entries.len() {
            return Err(MubeError::InvalidWeights {
                detail: format!("{} weights for {} QEFs", weights.len(), self.entries.len()),
            });
        }
        let entries = self
            .entries
            .iter()
            .zip(weights)
            .map(|((q, _), &w)| (Arc::clone(q), w))
            .collect();
        WeightedQefs::new(entries)
    }

    /// Evaluates all QEFs and the weighted overall quality.
    /// Returns `(overall, per-QEF (name, weight, score))`.
    pub fn evaluate(
        &self,
        ctx: &EvalContext,
        input: &EvalInput<'_>,
    ) -> (f64, Vec<(String, f64, f64)>) {
        let mut overall = 0.0;
        let mut breakdown = Vec::with_capacity(self.entries.len());
        for (q, w) in &self.entries {
            let score = q.evaluate(ctx, input).clamp(0.0, 1.0);
            overall += w * score;
            breakdown.push((q.name().to_string(), *w, score));
        }
        (overall, breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::source::SourceSpec;

    struct ConstQef(&'static str, f64);
    impl Qef for ConstQef {
        fn name(&self) -> &str {
            self.0
        }
        fn evaluate(&self, _: &EvalContext, _: &EvalInput<'_>) -> f64 {
            self.1
        }
    }

    fn universe() -> Universe {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("a", Schema::new(["x"])).cardinality(10));
        b.build().unwrap()
    }

    fn input_parts() -> (Universe, BTreeSet<SourceId>, MediatedSchema) {
        (universe(), [SourceId(0)].into(), MediatedSchema::empty())
    }

    #[test]
    fn weights_must_sum_to_one() {
        let qefs: Vec<(Arc<dyn Qef>, f64)> = vec![
            (Arc::new(ConstQef("a", 1.0)), 0.5),
            (Arc::new(ConstQef("b", 1.0)), 0.4),
        ];
        assert!(matches!(
            WeightedQefs::new(qefs),
            Err(MubeError::InvalidWeights { .. })
        ));
    }

    #[test]
    fn weights_must_be_in_unit_interval() {
        let qefs: Vec<(Arc<dyn Qef>, f64)> = vec![
            (Arc::new(ConstQef("a", 1.0)), 1.2),
            (Arc::new(ConstQef("b", 1.0)), -0.2),
        ];
        assert!(WeightedQefs::new(qefs).is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let qefs: Vec<(Arc<dyn Qef>, f64)> = vec![
            (Arc::new(ConstQef("a", 1.0)), 0.5),
            (Arc::new(ConstQef("a", 1.0)), 0.5),
        ];
        assert!(WeightedQefs::new(qefs).is_err());
    }

    #[test]
    fn evaluate_weights_scores() {
        let qefs = WeightedQefs::new(vec![
            (Arc::new(ConstQef("a", 1.0)) as Arc<dyn Qef>, 0.25),
            (Arc::new(ConstQef("b", 0.4)) as Arc<dyn Qef>, 0.75),
        ])
        .unwrap();
        let (u, s, m) = input_parts();
        let ctx = EvalContext::for_universe(&u);
        let input = EvalInput {
            universe: &u,
            sources: &s,
            schema: &m,
            match_quality: 0.0,
        };
        let (overall, breakdown) = qefs.evaluate(&ctx, &input);
        assert!((overall - (0.25 + 0.75 * 0.4)).abs() < 1e-12);
        assert_eq!(breakdown.len(), 2);
    }

    #[test]
    fn scores_are_clamped() {
        let qefs = WeightedQefs::new(vec![(Arc::new(ConstQef("wild", 7.0)) as Arc<dyn Qef>, 1.0)])
            .unwrap();
        let (u, s, m) = input_parts();
        let ctx = EvalContext::for_universe(&u);
        let input = EvalInput {
            universe: &u,
            sources: &s,
            schema: &m,
            match_quality: 0.0,
        };
        let (overall, _) = qefs.evaluate(&ctx, &input);
        assert_eq!(overall, 1.0);
    }

    #[test]
    fn reweighted_rescales_proportionally() {
        let qefs = WeightedQefs::new(vec![
            (Arc::new(ConstQef("a", 1.0)) as Arc<dyn Qef>, 0.5),
            (Arc::new(ConstQef("b", 1.0)) as Arc<dyn Qef>, 0.3),
            (Arc::new(ConstQef("c", 1.0)) as Arc<dyn Qef>, 0.2),
        ])
        .unwrap();
        let re = qefs.reweighted("a", 0.8).unwrap();
        assert!((re.weight_of("a").unwrap() - 0.8).abs() < 1e-9);
        // b : c stays 3 : 2.
        let b = re.weight_of("b").unwrap();
        let c = re.weight_of("c").unwrap();
        assert!((b / c - 1.5).abs() < 1e-9);
        assert!((b + c - 0.2).abs() < 1e-9);
    }

    #[test]
    fn reweighted_from_full_weight() {
        let qefs = WeightedQefs::new(vec![
            (Arc::new(ConstQef("a", 1.0)) as Arc<dyn Qef>, 1.0),
            (Arc::new(ConstQef("b", 1.0)) as Arc<dyn Qef>, 0.0),
            (Arc::new(ConstQef("c", 1.0)) as Arc<dyn Qef>, 0.0),
        ])
        .unwrap();
        let re = qefs.reweighted("a", 0.5).unwrap();
        assert!((re.weight_of("b").unwrap() - 0.25).abs() < 1e-9);
        assert!((re.weight_of("c").unwrap() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn unknown_qef_name() {
        let qefs =
            WeightedQefs::new(vec![(Arc::new(ConstQef("a", 1.0)) as Arc<dyn Qef>, 1.0)]).unwrap();
        assert!(matches!(
            qefs.reweighted("nope", 0.5),
            Err(MubeError::UnknownQef { .. })
        ));
        assert_eq!(qefs.weight_of("nope"), None);
    }

    #[test]
    fn with_weights_replaces() {
        let qefs = WeightedQefs::new(vec![
            (Arc::new(ConstQef("a", 1.0)) as Arc<dyn Qef>, 0.5),
            (Arc::new(ConstQef("b", 1.0)) as Arc<dyn Qef>, 0.5),
        ])
        .unwrap();
        let re = qefs.with_weights(&[0.9, 0.1]).unwrap();
        assert_eq!(re.weight_of("a"), Some(0.9));
        assert!(qefs.with_weights(&[1.0]).is_err());
        assert!(qefs.with_weights(&[0.9, 0.2]).is_err());
    }
}

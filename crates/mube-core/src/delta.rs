//! Incremental (delta) evaluation of candidate selections.
//!
//! The solvers in `mube-opt` explore the subset space one move at a time:
//! add a source, drop a source, swap two. Scoring each neighbour through
//! [`Problem::evaluate`] repeats work that a single move cannot have
//! changed — the selection's summed cardinality, the PCSA union of its
//! cooperating sources, and (via memoization) the matcher run itself.
//!
//! [`DeltaEval`] maintains that state *across* moves, keyed by the QEF's
//! declared [`DeltaClass`](crate::qef::DeltaClass):
//!
//! * **F2 (cardinality)** — an exact running `u64` tuple-count sum;
//! * **F3 (coverage)** / **F4 (redundancy)** — a running PCSA union of the
//!   cooperating sources' signatures, OR-ed register-by-register. Adds OR
//!   the new signature in (`O(registers)`); drops mark the union dirty and
//!   it is rebuilt lazily from the survivors, because OR has no inverse;
//! * **F1 (matching)** — the matcher outcome, shared through the problem's
//!   memo table so each distinct candidate is matched at most once across
//!   all workers;
//! * **selection-only QEFs** (characteristic aggregations) — re-evaluated
//!   directly at `O(|S|)`, `|S| ≤ m`, which needs no schema work;
//! * **opaque QEFs** — force the full [`Problem::evaluate`] path; this is
//!   the correctness escape hatch for user QEFs that read the mediated
//!   schema.
//!
//! Because the running state is integer sums and bitwise ORs — both exact
//! and order-independent — [`DeltaEval::score`] is *bitwise identical* to
//! the full evaluation path, a property enforced by the differential
//! harness in `tests/solver_differential.rs`. [`DeltaEval::recompute`]
//! rebuilds all state from scratch as an explicit escape hatch (and is what
//! the harness diffs against).

use std::collections::BTreeSet;
use std::sync::Mutex;

use mube_opt::SubsetObjective;
use mube_sketch::PcsaSignature;

use crate::ga::MediatedSchema;
use crate::ids::SourceId;
use crate::problem::{CandidateEval, Problem, INFEASIBLE_SCORE};
use crate::qef::{DeltaClass, EvalInput};

/// A single-source change to the tracked selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaMove {
    /// Select a source.
    Add(SourceId),
    /// Deselect a source.
    Drop(SourceId),
}

/// Incremental evaluator for one [`Problem`], tracking a current selection
/// and the per-QEF running state needed to score it in `O(Δ)` per move.
///
/// Not thread-safe by itself — each portfolio worker owns one (see
/// [`DeltaObjective`]). Move ids must belong to the problem's universe;
/// applying a foreign id panics (solvers only ever produce in-universe
/// indices, and infeasibility of *valid* ids is still reported through
/// [`DeltaEval::score`], exactly as the full path does).
pub struct DeltaEval<'p> {
    problem: &'p Problem,
    selected: BTreeSet<SourceId>,
    /// Σ cardinality over the selection (exact, F2 numerator).
    card_sum: u64,
    /// Number of selected cooperating (signature-bearing) sources.
    coop_count: usize,
    /// Σ cardinality over the cooperating sources (F4's fetched mass).
    coop_card: u64,
    /// Running OR of the cooperating sources' PCSA signatures. `None`
    /// while no selected source cooperates.
    union: Option<PcsaSignature>,
    /// Set when a cooperating source was dropped: OR cannot be undone, so
    /// the union is rebuilt from the survivors on next use.
    union_dirty: bool,
    /// Any QEF declared [`DeltaClass::Opaque`] → score via the full path.
    has_opaque: bool,
}

impl<'p> DeltaEval<'p> {
    /// Creates an evaluator with an empty selection.
    pub fn new(problem: &'p Problem) -> Self {
        let has_opaque = problem
            .qefs()
            .iter()
            .any(|(q, _)| q.delta_class() == DeltaClass::Opaque);
        DeltaEval {
            problem,
            selected: BTreeSet::new(),
            card_sum: 0,
            coop_count: 0,
            coop_card: 0,
            union: None,
            union_dirty: false,
            has_opaque,
        }
    }

    /// Creates an evaluator already positioned on `selection`.
    pub fn with_selection(problem: &'p Problem, selection: &BTreeSet<SourceId>) -> Self {
        let mut ev = DeltaEval::new(problem);
        ev.selected = selection.clone();
        ev.recompute();
        ev
    }

    /// The selection currently tracked.
    pub fn selection(&self) -> &BTreeSet<SourceId> {
        &self.selected
    }

    /// Applies one move in `O(Δ)`. Returns `false` (and changes nothing)
    /// if the move is a no-op: adding a source already selected, or
    /// dropping one that is not.
    pub fn apply(&mut self, mv: DeltaMove) -> bool {
        match mv {
            DeltaMove::Add(s) => {
                let src = self
                    .problem
                    .universe()
                    .get(s)
                    .expect("DeltaMove::Add references a source outside the universe");
                if !self.selected.insert(s) {
                    return false;
                }
                self.card_sum += src.cardinality();
                if let Some(sig) = src.signature() {
                    self.coop_count += 1;
                    self.coop_card += src.cardinality();
                    if !self.union_dirty {
                        match &mut self.union {
                            None => self.union = Some(sig.clone()),
                            Some(u) => u
                                .union_assign(sig)
                                .expect("universe signatures are config-checked"),
                        }
                    }
                }
                true
            }
            DeltaMove::Drop(s) => {
                if !self.selected.remove(&s) {
                    return false;
                }
                let src = self.problem.universe().source(s);
                self.card_sum -= src.cardinality();
                if src.cooperates() {
                    self.coop_count -= 1;
                    self.coop_card -= src.cardinality();
                    if self.coop_count == 0 {
                        self.union = None;
                        self.union_dirty = false;
                    } else {
                        self.union_dirty = true;
                    }
                }
                true
            }
        }
    }

    /// Repositions the evaluator on `target`, applying the symmetric
    /// difference as moves. Falls back to [`DeltaEval::recompute`] when the
    /// difference is larger than the target itself (a jump, not a step).
    pub fn set_selection(&mut self, target: &BTreeSet<SourceId>) {
        let drops: Vec<SourceId> = self.selected.difference(target).copied().collect();
        let adds: Vec<SourceId> = target.difference(&self.selected).copied().collect();
        if drops.len() + adds.len() > target.len() {
            self.selected = target.clone();
            self.recompute();
            return;
        }
        for s in drops {
            self.apply(DeltaMove::Drop(s));
        }
        for s in adds {
            self.apply(DeltaMove::Add(s));
        }
    }

    /// Rebuilds every piece of running state from the current selection —
    /// the explicit escape hatch, and the reference the differential tests
    /// compare incremental updates against.
    pub fn recompute(&mut self) {
        self.card_sum = 0;
        self.coop_count = 0;
        self.coop_card = 0;
        self.union = None;
        self.union_dirty = false;
        let universe = self.problem.universe();
        for &s in &self.selected {
            let src = universe.source(s);
            self.card_sum += src.cardinality();
            if let Some(sig) = src.signature() {
                self.coop_count += 1;
                self.coop_card += src.cardinality();
                match &mut self.union {
                    None => self.union = Some(sig.clone()),
                    Some(u) => u
                        .union_assign(sig)
                        .expect("universe signatures are config-checked"),
                }
            }
        }
    }

    /// Rebuilds only the PCSA union, after drops invalidated it.
    fn refresh_union(&mut self) {
        if !self.union_dirty {
            return;
        }
        self.union = None;
        self.union_dirty = false;
        let universe = self.problem.universe();
        for &s in &self.selected {
            if let Some(sig) = universe.source(s).signature() {
                match &mut self.union {
                    None => self.union = Some(sig.clone()),
                    Some(u) => u
                        .union_assign(sig)
                        .expect("universe signatures are config-checked"),
                }
            }
        }
    }

    /// Mirrors `RedundancyQef::evaluate` over the running state.
    fn redundancy_score(&self, distinct: f64) -> f64 {
        if self.coop_count == 0 {
            return 0.0;
        }
        if self.coop_count == 1 {
            return 1.0;
        }
        let fetched = self.coop_card;
        if fetched == 0 {
            return 1.0;
        }
        if distinct <= 0.0 {
            return 1.0;
        }
        let overlap = (fetched as f64 - distinct).max(0.0);
        let max_overlap = (self.coop_count - 1) as f64 * distinct;
        (1.0 - overlap / max_overlap).clamp(0.0, 1.0)
    }

    /// Scores the current selection: `Q(S)` if feasible,
    /// [`INFEASIBLE_SCORE`] otherwise — bitwise identical to
    /// [`Problem::objective`] on the same selection.
    pub fn score(&mut self) -> f64 {
        if self.has_opaque {
            // A schema-reading QEF is present: only the full path knows how
            // to feed it.
            return match self.problem.evaluate(&self.selected) {
                CandidateEval::Feasible(sol) => sol.quality,
                CandidateEval::Infeasible => INFEASIBLE_SCORE,
            };
        }
        let Some(match_quality) = self.problem.match_quality_of(&self.selected) else {
            return INFEASIBLE_SCORE;
        };
        self.refresh_union();
        let distinct = self.union.as_ref().map_or(0.0, PcsaSignature::estimate);
        let ctx = self.problem.context();
        let universe = self.problem.universe();
        // Selection-only QEFs never look at the schema (their contract), so
        // an empty placeholder is safe — and avoids rebuilding the real one.
        let schema = MediatedSchema::empty();
        let input = EvalInput {
            universe,
            sources: &self.selected,
            schema: &schema,
            match_quality,
        };
        let mut overall = 0.0;
        for (q, w) in self.problem.qefs().iter() {
            let score = match q.delta_class() {
                DeltaClass::MatchQuality | DeltaClass::SelectionOnly => q.evaluate(ctx, &input),
                DeltaClass::SelectedCardinality => {
                    if ctx.universe_cardinality == 0 {
                        0.0
                    } else {
                        self.card_sum as f64 / ctx.universe_cardinality as f64
                    }
                }
                DeltaClass::UnionCoverage => {
                    if ctx.universe_distinct <= 0.0 {
                        0.0
                    } else {
                        (distinct / ctx.universe_distinct).clamp(0.0, 1.0)
                    }
                }
                DeltaClass::UnionRedundancy => self.redundancy_score(distinct),
                DeltaClass::Opaque => unreachable!("opaque QEFs take the full path above"),
            };
            // Same clamp-then-accumulate loop as `WeightedQefs::evaluate`,
            // in the same entry order, for bitwise-identical sums.
            overall += w * score.clamp(0.0, 1.0);
        }
        overall
    }

    /// Convenience: reposition on `target` and score it.
    pub fn score_of(&mut self, target: &BTreeSet<SourceId>) -> f64 {
        self.set_selection(target);
        self.score()
    }
}

/// A worker-local [`SubsetObjective`] view over a [`Problem`], scoring
/// through a [`DeltaEval`].
///
/// Each portfolio worker gets its own instance (via
/// `SubsetObjective::worker_view`), so the mutex below is uncontended — it
/// exists only because `SubsetObjective::score` takes `&self`. Matcher
/// outcomes are still shared across workers through the problem's
/// memo table.
pub struct DeltaObjective<'p> {
    problem: &'p Problem,
    state: Mutex<DeltaEval<'p>>,
}

impl<'p> DeltaObjective<'p> {
    /// Creates a view positioned on the empty selection.
    pub fn new(problem: &'p Problem) -> Self {
        DeltaObjective {
            problem,
            state: Mutex::new(DeltaEval::new(problem)),
        }
    }
}

impl SubsetObjective for DeltaObjective<'_> {
    fn universe_size(&self) -> usize {
        self.problem.universe_size()
    }

    fn max_selected(&self) -> usize {
        self.problem.max_selected()
    }

    fn required(&self) -> Vec<usize> {
        self.problem.required()
    }

    fn score(&self, selected: &[usize]) -> f64 {
        let target: BTreeSet<SourceId> = selected.iter().map(|&i| SourceId(i as u32)).collect();
        let mut state = self.state.lock().expect("delta state poisoned");
        state.score_of(&target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraints;
    use crate::matchop::IdentityMatcher;
    use crate::qef::{EvalContext, Qef, WeightedQefs};
    use crate::qefs::{data_only_qefs, paper_default_qefs};
    use crate::schema::Schema;
    use crate::source::{SourceSpec, Universe};
    use mube_sketch::pcsa::PcsaConfig;
    use std::sync::Arc;

    fn sig(keys: std::ops::Range<u64>) -> PcsaSignature {
        let mut s = PcsaSignature::new(PcsaConfig::new(64, 32, 7));
        for k in keys {
            s.insert(k);
        }
        s
    }

    /// A mixed universe: cooperating and silent sources, characteristics
    /// present on some, one zero-cardinality source.
    fn universe() -> Arc<Universe> {
        let mut b = Universe::builder();
        for i in 0..8u64 {
            let mut spec = SourceSpec::new(format!("s{i}"), Schema::new(["x", "y"]))
                .cardinality(if i == 5 { 0 } else { 100 + i * 37 });
            if i % 2 == 0 {
                spec = spec.signature(sig(i * 300..i * 300 + 400));
            }
            if i % 3 == 0 {
                spec = spec.characteristic("mttf", 10.0 + i as f64);
            }
            b.add_source(spec);
        }
        Arc::new(b.build().unwrap())
    }

    fn problem(qefs: WeightedQefs) -> Problem {
        Problem::new(
            universe(),
            Arc::new(IdentityMatcher),
            qefs,
            Constraints::with_max_sources(5).beta(1),
        )
        .unwrap()
    }

    fn assert_bitwise(a: f64, b: f64, what: &str) {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} != {b}");
    }

    #[test]
    fn moves_match_full_objective_bitwise() {
        let p = problem(paper_default_qefs("mttf"));
        let mut ev = DeltaEval::new(&p);
        let walk = [
            DeltaMove::Add(SourceId(0)),
            DeltaMove::Add(SourceId(3)),
            DeltaMove::Add(SourceId(4)),
            DeltaMove::Drop(SourceId(3)),
            DeltaMove::Add(SourceId(5)),
            DeltaMove::Add(SourceId(2)),
            DeltaMove::Drop(SourceId(0)),
            DeltaMove::Add(SourceId(6)),
            DeltaMove::Add(SourceId(7)),
            DeltaMove::Add(SourceId(1)), // now oversize → infeasible
        ];
        for (i, &mv) in walk.iter().enumerate() {
            assert!(ev.apply(mv));
            let full = p.objective(&ev.selection().clone());
            assert_bitwise(ev.score(), full, &format!("after move {i} ({mv:?})"));
        }
    }

    #[test]
    fn recompute_matches_incremental_state() {
        let p = problem(data_only_qefs());
        let mut ev = DeltaEval::new(&p);
        for s in [0u32, 2, 4, 6] {
            ev.apply(DeltaMove::Add(SourceId(s)));
        }
        ev.apply(DeltaMove::Drop(SourceId(2))); // dirties the union
        let incremental = ev.score();
        let mut fresh = DeltaEval::with_selection(&p, &ev.selection().clone());
        assert_bitwise(incremental, fresh.score(), "incremental vs recompute");
        ev.recompute();
        assert_bitwise(ev.score(), incremental, "recompute is idempotent");
    }

    #[test]
    fn noop_moves_are_rejected() {
        let p = problem(data_only_qefs());
        let mut ev = DeltaEval::new(&p);
        assert!(!ev.apply(DeltaMove::Drop(SourceId(1))));
        assert!(ev.apply(DeltaMove::Add(SourceId(1))));
        assert!(!ev.apply(DeltaMove::Add(SourceId(1))));
        assert_eq!(ev.selection().len(), 1);
    }

    #[test]
    fn set_selection_jumps_and_steps() {
        let p = problem(paper_default_qefs("mttf"));
        let mut ev = DeltaEval::new(&p);
        let a: BTreeSet<_> = [SourceId(0), SourceId(1), SourceId(2)].into();
        let b: BTreeSet<_> = [SourceId(1), SourceId(2), SourceId(4)].into(); // step
        let c: BTreeSet<_> = [SourceId(5), SourceId(6), SourceId(7)].into(); // jump
        for target in [&a, &b, &c] {
            ev.set_selection(target);
            assert_eq!(ev.selection(), target);
            assert_bitwise(ev.score(), p.objective(target), "set_selection");
        }
    }

    #[test]
    fn empty_selection_is_infeasible() {
        let p = problem(data_only_qefs());
        let mut ev = DeltaEval::new(&p);
        assert_eq!(ev.score(), INFEASIBLE_SCORE);
        ev.apply(DeltaMove::Add(SourceId(0)));
        ev.apply(DeltaMove::Drop(SourceId(0)));
        assert_eq!(ev.score(), INFEASIBLE_SCORE);
    }

    /// A QEF that reads the mediated schema — must force the full path.
    struct SchemaSize;
    impl Qef for SchemaSize {
        fn name(&self) -> &str {
            "schema-size"
        }
        fn evaluate(&self, _: &EvalContext, input: &EvalInput<'_>) -> f64 {
            (input.schema.len() as f64 / 16.0).clamp(0.0, 1.0)
        }
    }

    #[test]
    fn opaque_qefs_take_the_full_path() {
        let qefs = WeightedQefs::new(vec![
            (Arc::new(SchemaSize) as Arc<dyn Qef>, 0.5),
            (Arc::new(crate::qefs::CardinalityQef) as Arc<dyn Qef>, 0.5),
        ])
        .unwrap();
        let p = problem(qefs);
        let mut ev = DeltaEval::new(&p);
        for s in [0u32, 1, 4] {
            ev.apply(DeltaMove::Add(SourceId(s)));
            let full = p.objective(&ev.selection().clone());
            assert_bitwise(ev.score(), full, "opaque fallback");
        }
    }

    #[test]
    fn delta_objective_matches_problem_scores() {
        let p = problem(paper_default_qefs("mttf"));
        let view = DeltaObjective::new(&p);
        for sel in [
            vec![0usize],
            vec![0, 1, 2],
            vec![2, 4, 6],
            vec![0, 1, 2, 3, 4, 5], // oversize
            vec![7],
        ] {
            assert_bitwise(
                view.score(&sel),
                p.score(&sel),
                &format!("DeltaObjective on {sel:?}"),
            );
        }
        assert_eq!(view.universe_size(), p.universe_size());
        assert_eq!(view.max_selected(), p.max_selected());
        assert_eq!(view.required(), p.required());
    }

    #[test]
    fn worker_view_is_a_delta_objective() {
        let p = problem(data_only_qefs());
        let view = p.worker_view().expect("problem provides a worker view");
        assert_bitwise(view.score(&[0, 2]), p.score(&[0, 2]), "worker_view");
    }
}

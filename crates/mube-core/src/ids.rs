//! Identifier newtypes.
//!
//! Sources are numbered densely by the [`crate::source::UniverseBuilder`], and
//! attributes are addressed by (source, position-in-schema). Using newtypes
//! rather than bare integers keeps the two index spaces from being mixed up.

use std::fmt;

/// Identifier of a data source within a [`crate::source::Universe`].
///
/// Ids are dense: a universe of `n` sources uses ids `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(pub u32);

impl SourceId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of one attribute of one source's schema.
///
/// The paper writes this as `a_ij`: attribute `j` of source `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId {
    /// The source the attribute belongs to.
    pub source: SourceId,
    /// Zero-based position within the source's schema.
    pub index: u32,
}

impl AttrId {
    /// Convenience constructor.
    #[inline]
    pub fn new(source: SourceId, index: u32) -> Self {
        AttrId { source, index }
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}.{}", self.source.0, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_groups_by_source_then_index() {
        let a = AttrId::new(SourceId(0), 5);
        let b = AttrId::new(SourceId(1), 0);
        let c = AttrId::new(SourceId(1), 3);
        assert!(a < b && b < c);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SourceId(3).to_string(), "s3");
        assert_eq!(AttrId::new(SourceId(3), 1).to_string(), "a3.1");
    }
}

//! Error types for the `µBE` core.

use crate::ids::SourceId;

/// Errors raised by the `µBE` core library.
#[derive(Debug, Clone, PartialEq)]
pub enum MubeError {
    /// A universe must contain at least one source.
    EmptyUniverse,
    /// Every source must have at least one attribute.
    EmptySchema {
        /// Name of the offending source.
        source: String,
    },
    /// Cooperating sources must use the same PCSA configuration so their
    /// signatures are OR-composable.
    SignatureConfigMismatch {
        /// Name of the offending source.
        source: String,
    },
    /// Definition 1: a GA must be non-empty.
    EmptyGa,
    /// Definition 1: a GA cannot contain two attributes from one source.
    GaSourceConflict {
        /// The source that appears twice.
        source: SourceId,
    },
    /// A constraint referenced a source id outside the universe.
    UnknownSource {
        /// The foreign id.
        source: SourceId,
    },
    /// A GA constraint referenced an attribute that does not exist.
    UnknownAttribute {
        /// Description of the missing attribute.
        detail: String,
    },
    /// QEF weights must each be in [0, 1] and sum to 1.
    InvalidWeights {
        /// What was wrong.
        detail: String,
    },
    /// The constraint set is unsatisfiable as given (e.g. more required
    /// sources than `max_sources`, or conflicting GA constraints).
    ConstraintConflict {
        /// What conflicts.
        detail: String,
    },
    /// A named QEF was not found in the problem.
    UnknownQef {
        /// The name that failed to resolve.
        name: String,
    },
    /// The matching threshold or other parameter was out of range.
    InvalidParameter {
        /// What was wrong.
        detail: String,
    },
    /// A feedback verb referenced a GA index that the latest solution does
    /// not have — typically a stale handle after a re-solve changed the
    /// schema. Carries how many GAs *are* available so callers (CLI,
    /// server) can report the valid range without re-inspecting state.
    StaleGaIndex {
        /// The index the caller asked for.
        index: usize,
        /// GAs available in the latest solution (0 if no iteration ran).
        available: usize,
    },
}

impl std::fmt::Display for MubeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MubeError::EmptyUniverse => write!(f, "universe contains no sources"),
            MubeError::EmptySchema { source } => {
                write!(f, "source `{source}` has an empty schema")
            }
            MubeError::SignatureConfigMismatch { source } => write!(
                f,
                "source `{source}` has a PCSA signature with a different configuration"
            ),
            MubeError::EmptyGa => write!(f, "a global attribute must be non-empty"),
            MubeError::GaSourceConflict { source } => write!(
                f,
                "a global attribute cannot contain two attributes from source {source}"
            ),
            MubeError::UnknownSource { source } => {
                write!(f, "source {source} is not in the universe")
            }
            MubeError::UnknownAttribute { detail } => {
                write!(f, "unknown attribute: {detail}")
            }
            MubeError::InvalidWeights { detail } => write!(f, "invalid weights: {detail}"),
            MubeError::ConstraintConflict { detail } => {
                write!(f, "conflicting constraints: {detail}")
            }
            MubeError::UnknownQef { name } => write!(f, "no QEF named `{name}`"),
            MubeError::InvalidParameter { detail } => {
                write!(f, "invalid parameter: {detail}")
            }
            MubeError::StaleGaIndex { index, available } => write!(
                f,
                "GA #{index} is stale: the latest solution has {available} GAs"
            ),
        }
    }
}

impl std::error::Error for MubeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MubeError::GaSourceConflict {
            source: SourceId(4),
        };
        assert!(e.to_string().contains("s4"));
        let e = MubeError::InvalidWeights {
            detail: "sum is 0.9".into(),
        };
        assert!(e.to_string().contains("0.9"));
    }
}

//! Structured diagnostics for pre-solve feasibility analysis.
//!
//! `µBE` sessions can burn a full optimization budget only to report "no
//! feasible solution" — or quietly return a degenerate one — when the
//! *inputs* were already contradictory: more pinned sources than `m`, a GA
//! constraint referencing an attribute that does not exist, a `θ` no pair of
//! attribute names can reach. The `mube-audit` crate detects those
//! conditions statically; this module defines the diagnostic vocabulary it
//! (and the `mube lint` CLI) report in: stable codes, severities, and the
//! offending source/attribute ids, so tools can match on codes while humans
//! read the rendered report (see [`crate::explain::lint_report`]).

use std::fmt;

use crate::ids::{AttrId, SourceId};
use crate::source::Universe;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The problem is definitely broken: solving cannot succeed (or the
    /// constraints cannot even be constructed).
    Error,
    /// The problem is degenerate or suspicious but may still solve.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// Stable diagnostic codes. The `MUBE0xx` string of each code is part of
/// the public interface: scripts may match on it, so codes are never
/// renumbered or reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// MUBE001: the effective required sources (pins plus GA-constraint
    /// sources) exceed `m`.
    RequiredSourcesExceedMax,
    /// MUBE002: a required GA references an attribute not in the universe.
    GaUnknownAttribute,
    /// MUBE003: required GAs overlap but cannot merge into a valid GA
    /// (their union would take two attributes from one source, violating
    /// Definition 1).
    GaConstraintsUnmergeable,
    /// MUBE004: `θ` exceeds the best similarity any pair of attributes from
    /// different sources can reach, so no non-seed GA can form.
    ThetaUnsatisfiable,
    /// MUBE005: `β` exceeds the largest GA any feasible solution could
    /// contain (`min(m, |U|)` — a GA takes at most one attribute per
    /// selected source).
    BetaExceedsFeasibleGa,
    /// MUBE006: an attribute appears in more than one required GA; the
    /// overlapping constraints will be merged into one seed.
    AttrInMultipleRequiredGas,
    /// MUBE007: a QEF weight is non-finite, outside `[0, 1]`, duplicated,
    /// or the weights do not sum to 1.
    InvalidQefWeight,
    /// MUBE008: a required source id is not in the universe.
    UnknownRequiredSource,
    /// MUBE009: `θ` outside `[0, 1]`.
    ThetaOutOfRange,
    /// MUBE010: `m` is zero — no solution can select any source.
    ZeroMaxSources,
    /// MUBE011: a source schema has two attributes that normalize to the
    /// same name; matching cannot tell them apart.
    DuplicateAttributeNames,
    /// MUBE012: a source reports zero tuples; it can only dilute
    /// cardinality/coverage scores.
    ZeroCardinalitySource,
    /// MUBE013: two sources share a name; name-based constraints (CLI pins,
    /// `require_ga_by_names`) resolve to the first one only.
    DuplicateSourceNames,
    /// MUBE014: no attribute of this source reaches similarity `θ` with any
    /// attribute of another source, so it can never join a (non-seed) GA.
    IsolatedSource,
    /// MUBE015: a request asked for more compute than the server allows
    /// (`threads`, `restarts`, portfolio members, or `time_budget_ms`
    /// beyond the documented bound).
    ResourceBoundExceeded,
    /// MUBE016: two sources have names that normalize to the same key
    /// (case/punctuation variants of one name); likely the same source
    /// ingested twice, and name-based lookups will silently pick one.
    NearDuplicateSourceNames,
    /// MUBE017: the catalog exceeds the configured source-count threshold
    /// but no pruning front end is enabled; a flat solve over a universe
    /// this large will spend its entire budget scoring candidates.
    UnprunedLargeCatalog,
}

impl DiagCode {
    /// Every code, for catalogs and docs.
    pub const ALL: [DiagCode; 17] = [
        DiagCode::RequiredSourcesExceedMax,
        DiagCode::GaUnknownAttribute,
        DiagCode::GaConstraintsUnmergeable,
        DiagCode::ThetaUnsatisfiable,
        DiagCode::BetaExceedsFeasibleGa,
        DiagCode::AttrInMultipleRequiredGas,
        DiagCode::InvalidQefWeight,
        DiagCode::UnknownRequiredSource,
        DiagCode::ThetaOutOfRange,
        DiagCode::ZeroMaxSources,
        DiagCode::DuplicateAttributeNames,
        DiagCode::ZeroCardinalitySource,
        DiagCode::DuplicateSourceNames,
        DiagCode::IsolatedSource,
        DiagCode::ResourceBoundExceeded,
        DiagCode::NearDuplicateSourceNames,
        DiagCode::UnprunedLargeCatalog,
    ];

    /// The stable `MUBE0xx` identifier.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::RequiredSourcesExceedMax => "MUBE001",
            DiagCode::GaUnknownAttribute => "MUBE002",
            DiagCode::GaConstraintsUnmergeable => "MUBE003",
            DiagCode::ThetaUnsatisfiable => "MUBE004",
            DiagCode::BetaExceedsFeasibleGa => "MUBE005",
            DiagCode::AttrInMultipleRequiredGas => "MUBE006",
            DiagCode::InvalidQefWeight => "MUBE007",
            DiagCode::UnknownRequiredSource => "MUBE008",
            DiagCode::ThetaOutOfRange => "MUBE009",
            DiagCode::ZeroMaxSources => "MUBE010",
            DiagCode::DuplicateAttributeNames => "MUBE011",
            DiagCode::ZeroCardinalitySource => "MUBE012",
            DiagCode::DuplicateSourceNames => "MUBE013",
            DiagCode::IsolatedSource => "MUBE014",
            DiagCode::ResourceBoundExceeded => "MUBE015",
            DiagCode::NearDuplicateSourceNames => "MUBE016",
            DiagCode::UnprunedLargeCatalog => "MUBE017",
        }
    }

    /// The severity this code always reports at.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::RequiredSourcesExceedMax
            | DiagCode::GaUnknownAttribute
            | DiagCode::GaConstraintsUnmergeable
            | DiagCode::InvalidQefWeight
            | DiagCode::UnknownRequiredSource
            | DiagCode::ThetaOutOfRange
            | DiagCode::ZeroMaxSources
            | DiagCode::ResourceBoundExceeded => Severity::Error,
            DiagCode::ThetaUnsatisfiable
            | DiagCode::BetaExceedsFeasibleGa
            | DiagCode::AttrInMultipleRequiredGas
            | DiagCode::DuplicateAttributeNames
            | DiagCode::ZeroCardinalitySource
            | DiagCode::DuplicateSourceNames
            | DiagCode::IsolatedSource
            | DiagCode::NearDuplicateSourceNames
            | DiagCode::UnprunedLargeCatalog => Severity::Warning,
        }
    }

    /// A short kebab-case slug naming the condition.
    pub fn title(self) -> &'static str {
        match self {
            DiagCode::RequiredSourcesExceedMax => "required-sources-exceed-max",
            DiagCode::GaUnknownAttribute => "required-ga-references-unknown-attribute",
            DiagCode::GaConstraintsUnmergeable => "required-gas-cannot-merge",
            DiagCode::ThetaUnsatisfiable => "theta-unsatisfiable",
            DiagCode::BetaExceedsFeasibleGa => "beta-exceeds-feasible-ga",
            DiagCode::AttrInMultipleRequiredGas => "attribute-in-multiple-required-gas",
            DiagCode::InvalidQefWeight => "invalid-qef-weight",
            DiagCode::UnknownRequiredSource => "unknown-required-source",
            DiagCode::ThetaOutOfRange => "theta-out-of-range",
            DiagCode::ZeroMaxSources => "zero-max-sources",
            DiagCode::DuplicateAttributeNames => "duplicate-attribute-names",
            DiagCode::ZeroCardinalitySource => "zero-cardinality-source",
            DiagCode::DuplicateSourceNames => "duplicate-source-names",
            DiagCode::IsolatedSource => "isolated-source",
            DiagCode::ResourceBoundExceeded => "resource-bound-exceeded",
            DiagCode::NearDuplicateSourceNames => "near-duplicate-source-names",
            DiagCode::UnprunedLargeCatalog => "unpruned-large-catalog",
        }
    }

    /// A fixed one-paragraph remediation hint, rendered as the `help:` line
    /// of the report.
    pub fn help(self) -> &'static str {
        match self {
            DiagCode::RequiredSourcesExceedMax => {
                "raise max_sources, unpin sources, or drop GA constraints \
                 (each GA constraint implicitly pins its sources)"
            }
            DiagCode::GaUnknownAttribute => {
                "check the (source, attribute-index) pairs of the GA \
                 constraint against the catalog"
            }
            DiagCode::GaConstraintsUnmergeable => {
                "the output GAs are disjoint, so overlapping GA constraints \
                 must merge into one valid GA; a valid GA takes at most one \
                 attribute per source (Definition 1)"
            }
            DiagCode::ThetaUnsatisfiable => {
                "lower theta, or provide GA constraints: seed GAs bypass the \
                 threshold"
            }
            DiagCode::BetaExceedsFeasibleGa => {
                "a GA spans at most one attribute per selected source, so no \
                 GA can reach beta attributes; lower beta or raise max_sources"
            }
            DiagCode::AttrInMultipleRequiredGas => {
                "overlapping GA constraints are merged into a single seed; \
                 state the merged GA once if that is the intent"
            }
            DiagCode::InvalidQefWeight => {
                "QEF weights must each be finite, within [0, 1], unique per \
                 QEF, and sum to 1"
            }
            DiagCode::UnknownRequiredSource => "check the pinned source against the catalog",
            DiagCode::ThetaOutOfRange => "theta is a similarity bound in [0, 1]",
            DiagCode::ZeroMaxSources => "max_sources must be at least 1",
            DiagCode::DuplicateAttributeNames => {
                "attribute names are normalized (lowercased, whitespace \
                 collapsed); rename one of the colliding attributes"
            }
            DiagCode::ZeroCardinalitySource => {
                "a source with no tuples contributes nothing to coverage or \
                 cardinality; consider removing it from the catalog"
            }
            DiagCode::DuplicateSourceNames => {
                "rename one of the sources; name lookups return the first \
                 match only"
            }
            DiagCode::IsolatedSource => {
                "the source can still be selected for its data, but it will \
                 never share a GA; lower theta or bridge it with a GA \
                 constraint"
            }
            DiagCode::ResourceBoundExceeded => {
                "lower the requested threads/restarts/portfolio size or time \
                 budget; the server's bounds are listed in PROTOCOL.md"
            }
            DiagCode::NearDuplicateSourceNames => {
                "the names differ only in case or punctuation; if they are \
                 the same source, drop one; if distinct, rename one so \
                 name-based pins cannot be misread"
            }
            DiagCode::UnprunedLargeCatalog => {
                "enable the mube-scale pruning front end (`mube scale-solve`, \
                 or the `prune` block on POST /sessions) or raise the \
                 threshold if a flat solve over this many sources is intended"
            }
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One finding: a code plus the specific ids it is about.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// What was found.
    pub code: DiagCode,
    /// Instance-specific description (ids, values, limits).
    pub message: String,
    /// Sources the finding is about, if any.
    pub sources: Vec<SourceId>,
    /// Attributes the finding is about, if any.
    pub attrs: Vec<AttrId>,
}

impl Diagnostic {
    /// Creates a diagnostic with no offending ids attached.
    pub fn new(code: DiagCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            message: message.into(),
            sources: Vec::new(),
            attrs: Vec::new(),
        }
    }

    /// Attaches offending sources (builder style).
    pub fn with_sources<I: IntoIterator<Item = SourceId>>(mut self, sources: I) -> Self {
        self.sources = sources.into_iter().collect();
        self
    }

    /// Attaches offending attributes (builder style).
    pub fn with_attrs<I: IntoIterator<Item = AttrId>>(mut self, attrs: I) -> Self {
        self.attrs = attrs.into_iter().collect();
        self
    }

    /// The severity (always determined by the code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Renders the diagnostic with ids resolved to names against a universe.
    pub fn display<'a>(&'a self, universe: &'a Universe) -> DiagnosticDisplay<'a> {
        DiagnosticDisplay {
            diagnostic: self,
            universe,
        }
    }
}

/// [`fmt::Display`] adaptor produced by [`Diagnostic::display`].
pub struct DiagnosticDisplay<'a> {
    diagnostic: &'a Diagnostic,
    universe: &'a Universe,
}

impl fmt::Display for DiagnosticDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.diagnostic;
        writeln!(
            f,
            "{}[{}]: {} — {}",
            d.severity(),
            d.code.code(),
            d.code.title(),
            d.message
        )?;
        if !d.sources.is_empty() {
            let names: Vec<String> = d
                .sources
                .iter()
                .map(|&s| {
                    self.universe
                        .get(s)
                        .map_or_else(|| s.to_string(), |src| src.name().to_string())
                })
                .collect();
            writeln!(f, "  sources: {}", names.join(", "))?;
        }
        if !d.attrs.is_empty() {
            let names: Vec<String> = d
                .attrs
                .iter()
                .map(|&a| {
                    self.universe
                        .attr_name(a)
                        .map_or_else(|| a.to_string(), |n| format!("{a} ({n})"))
                })
                .collect();
            writeln!(f, "  attributes: {}", names.join(", "))?;
        }
        write!(f, "  help: {}", d.code.help())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let codes: std::collections::BTreeSet<_> = DiagCode::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes.len(), DiagCode::ALL.len());
        for c in DiagCode::ALL {
            assert!(c.code().starts_with("MUBE"), "{}", c.code());
            assert_eq!(c.code().len(), 7);
            assert!(!c.title().is_empty());
            assert!(!c.help().is_empty());
        }
        assert_eq!(DiagCode::RequiredSourcesExceedMax.code(), "MUBE001");
        assert_eq!(DiagCode::IsolatedSource.code(), "MUBE014");
        assert_eq!(DiagCode::ResourceBoundExceeded.code(), "MUBE015");
        assert_eq!(DiagCode::NearDuplicateSourceNames.code(), "MUBE016");
        assert_eq!(DiagCode::UnprunedLargeCatalog.code(), "MUBE017");
    }

    #[test]
    fn severity_partition() {
        let errors = DiagCode::ALL
            .iter()
            .filter(|c| c.severity() == Severity::Error)
            .count();
        let warnings = DiagCode::ALL
            .iter()
            .filter(|c| c.severity() == Severity::Warning)
            .count();
        assert_eq!(errors + warnings, DiagCode::ALL.len());
        assert_eq!(errors, 8);
    }

    #[test]
    fn display_resolves_names() {
        use crate::schema::Schema;
        use crate::source::SourceSpec;
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("shop", Schema::new(["title"])));
        let u = b.build().unwrap();
        let d = Diagnostic::new(DiagCode::ZeroCardinalitySource, "no tuples")
            .with_sources([SourceId(0)])
            .with_attrs([AttrId::new(SourceId(0), 0)]);
        let text = d.display(&u).to_string();
        assert!(text.contains("warning[MUBE012]"), "{text}");
        assert!(text.contains("shop"), "{text}");
        assert!(text.contains("a0.0 (title)"), "{text}");
        assert!(text.contains("help:"), "{text}");
    }

    #[test]
    fn display_survives_unknown_ids() {
        use crate::schema::Schema;
        use crate::source::SourceSpec;
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("s", Schema::new(["x"])));
        let u = b.build().unwrap();
        let d = Diagnostic::new(DiagCode::UnknownRequiredSource, "ghost pin")
            .with_sources([SourceId(99)])
            .with_attrs([AttrId::new(SourceId(99), 0)]);
        let text = d.display(&u).to_string();
        assert!(text.contains("s99"), "{text}");
        assert!(text.contains("a99.0"), "{text}");
    }
}

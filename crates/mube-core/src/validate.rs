//! Post-solve solution validation.
//!
//! The solvers in `mube-opt` enforce the structural constraints (size bound,
//! required elements) and [`crate::problem::Problem`] enforces feasibility
//! through its objective, but nothing downstream re-checks the *returned*
//! [`Solution`] against the paper's definitions. [`SolutionValidator`] does
//! exactly that: an independent audit of a solution against the full
//! constraint set `(C, G, m, θ, β)` and the QEF bounds, used as
//! defense-in-depth by [`crate::session::Session::run`] and directly by
//! tests that corrupt solutions on purpose.

use std::fmt;
use std::sync::Arc;

use crate::constraints::Constraints;
use crate::error::MubeError;
use crate::ids::SourceId;
use crate::problem::Problem;
use crate::solution::Solution;
use crate::source::Universe;

/// Tolerance when re-deriving `Q = Σ wᵢ·Fᵢ` from a solution's breakdown.
const QUALITY_TOLERANCE: f64 = 1e-6;

/// One way a solution can fail validation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The solution selects no sources.
    EmptySelection,
    /// More sources selected than `m` allows.
    TooManySources {
        /// Number of sources the solution selects.
        selected: usize,
        /// The `m` bound it had to respect.
        max: usize,
    },
    /// A selected source is not in the universe.
    UnknownSource {
        /// The offending id.
        source: SourceId,
    },
    /// A required (pinned or GA-implied) source is missing.
    MissingRequiredSource {
        /// The missing source.
        source: SourceId,
    },
    /// A schema GA uses an attribute of a source that is not selected.
    GaOutsideSelection {
        /// Index of the GA within the mediated schema.
        ga_index: usize,
        /// The unselected source the GA reaches into.
        source: SourceId,
    },
    /// Two schema GAs share an attribute (Definition 2 requires disjoint GAs).
    SchemaOverlap,
    /// A pinned source is not touched by any GA (Definition 2 on `C`).
    ConstraintSourceUnspanned {
        /// The unspanned pinned source.
        source: SourceId,
    },
    /// A required GA is not subsumed by any schema GA.
    RequiredGaNotCovered {
        /// Index of the GA constraint within `G`.
        ga_index: usize,
    },
    /// A non-seed GA has fewer than `β` attributes.
    BetaViolation {
        /// Index of the GA within the mediated schema.
        ga_index: usize,
        /// Its attribute count.
        len: usize,
        /// The `β` bound it had to respect.
        beta: usize,
    },
    /// The overall quality is outside `[0, 1]` or not finite.
    QualityOutOfRange {
        /// The reported quality.
        quality: f64,
    },
    /// A per-QEF weight or score is outside `[0, 1]` or not finite.
    QefScoreOutOfRange {
        /// The QEF's name.
        name: String,
        /// Its reported weight.
        weight: f64,
        /// Its reported score.
        score: f64,
    },
    /// The breakdown's weights do not sum to 1.
    QefWeightsUnnormalized {
        /// The actual sum.
        sum: f64,
    },
    /// The reported quality disagrees with `Σ wᵢ·Fᵢ` over the breakdown.
    QualityInconsistent {
        /// The quality the solution states.
        stated: f64,
        /// The quality recomputed from the breakdown.
        computed: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::EmptySelection => write!(f, "solution selects no sources"),
            Violation::TooManySources { selected, max } => {
                write!(f, "{selected} sources selected but max_sources is {max}")
            }
            Violation::UnknownSource { source } => {
                write!(f, "selected source {source} is not in the universe")
            }
            Violation::MissingRequiredSource { source } => {
                write!(f, "required source {source} is not selected")
            }
            Violation::GaOutsideSelection { ga_index, source } => {
                write!(
                    f,
                    "GA{ga_index} uses an attribute of unselected source {source}"
                )
            }
            Violation::SchemaOverlap => {
                write!(f, "mediated schema GAs are not pairwise disjoint")
            }
            Violation::ConstraintSourceUnspanned { source } => {
                write!(f, "pinned source {source} is not touched by any GA")
            }
            Violation::RequiredGaNotCovered { ga_index } => {
                write!(
                    f,
                    "GA constraint #{ga_index} is not subsumed by any schema GA"
                )
            }
            Violation::BetaViolation {
                ga_index,
                len,
                beta,
            } => {
                write!(f, "GA{ga_index} has {len} attributes, below beta = {beta}")
            }
            Violation::QualityOutOfRange { quality } => {
                write!(f, "overall quality {quality} outside [0, 1]")
            }
            Violation::QefScoreOutOfRange {
                name,
                weight,
                score,
            } => {
                write!(
                    f,
                    "QEF `{name}` weight {weight} / score {score} outside [0, 1]"
                )
            }
            Violation::QefWeightsUnnormalized { sum } => {
                write!(f, "QEF weights sum to {sum}, expected 1")
            }
            Violation::QualityInconsistent { stated, computed } => {
                write!(
                    f,
                    "stated quality {stated} != weighted breakdown {computed}"
                )
            }
        }
    }
}

/// An independent auditor for solutions of one problem instance.
#[derive(Clone)]
pub struct SolutionValidator {
    universe: Arc<Universe>,
    constraints: Constraints,
}

impl SolutionValidator {
    /// Builds a validator for a universe and constraint set.
    pub fn new(universe: Arc<Universe>, constraints: Constraints) -> Self {
        SolutionValidator {
            universe,
            constraints,
        }
    }

    /// Builds a validator auditing solutions of `problem`.
    pub fn for_problem(problem: &Problem) -> Self {
        SolutionValidator::new(
            Arc::clone(problem.universe()),
            problem.constraints().clone(),
        )
    }

    /// Audits a solution, returning every violation found (empty = valid).
    pub fn check(&self, solution: &Solution) -> Vec<Violation> {
        let mut out = Vec::new();
        let c = &self.constraints;

        if solution.sources.is_empty() {
            out.push(Violation::EmptySelection);
        }
        if solution.sources.len() > c.max_sources {
            out.push(Violation::TooManySources {
                selected: solution.sources.len(),
                max: c.max_sources,
            });
        }
        for &s in &solution.sources {
            if self.universe.get(s).is_none() {
                out.push(Violation::UnknownSource { source: s });
            }
        }
        for s in c.effective_required_sources() {
            if !solution.sources.contains(&s) {
                out.push(Violation::MissingRequiredSource { source: s });
            }
        }

        // Schema-side checks (Definitions 1–3 restricted to the selection).
        for (i, ga) in solution.schema.gas().iter().enumerate() {
            for source in ga.sources() {
                if !solution.sources.contains(&source) {
                    out.push(Violation::GaOutsideSelection {
                        ga_index: i,
                        source,
                    });
                }
            }
        }
        if !solution.schema.gas_disjoint() {
            out.push(Violation::SchemaOverlap);
        }
        for &s in &c.required_sources {
            if solution.sources.contains(&s)
                && !solution.schema.gas().iter().any(|ga| ga.touches_source(s))
            {
                out.push(Violation::ConstraintSourceUnspanned { source: s });
            }
        }
        for (i, required) in c.required_gas.iter().enumerate() {
            if !solution
                .schema
                .gas()
                .iter()
                .any(|ga| required.is_subset_of(ga))
            {
                out.push(Violation::RequiredGaNotCovered { ga_index: i });
            }
        }
        let seeds = c.merged_ga_seeds();
        for (i, ga) in solution.schema.gas().iter().enumerate() {
            if ga.len() < c.beta && !seeds.iter().any(|seed| seed.is_subset_of(ga)) {
                out.push(Violation::BetaViolation {
                    ga_index: i,
                    len: ga.len(),
                    beta: c.beta,
                });
            }
        }

        // QEF bounds: quality and breakdown in range and mutually consistent.
        if !solution.quality.is_finite() || !(0.0..=1.0).contains(&solution.quality) {
            out.push(Violation::QualityOutOfRange {
                quality: solution.quality,
            });
        }
        if !solution.qef_scores.is_empty() {
            let mut weight_sum = 0.0;
            let mut computed = 0.0;
            for (name, weight, score) in &solution.qef_scores {
                let unit = 0.0..=1.0;
                if !weight.is_finite()
                    || !score.is_finite()
                    || !unit.contains(weight)
                    || !unit.contains(score)
                {
                    out.push(Violation::QefScoreOutOfRange {
                        name: name.clone(),
                        weight: *weight,
                        score: *score,
                    });
                }
                weight_sum += weight;
                computed += weight * score;
            }
            if (weight_sum - 1.0).abs() > QUALITY_TOLERANCE {
                out.push(Violation::QefWeightsUnnormalized { sum: weight_sum });
            }
            if (computed - solution.quality).abs() > QUALITY_TOLERANCE {
                out.push(Violation::QualityInconsistent {
                    stated: solution.quality,
                    computed,
                });
            }
        }
        out
    }

    /// Like [`SolutionValidator::check`], but folds violations into a
    /// [`MubeError`] so callers can `?` it.
    pub fn validate(&self, solution: &Solution) -> Result<(), MubeError> {
        let violations = self.check(solution);
        if violations.is_empty() {
            return Ok(());
        }
        let detail: Vec<String> = violations.iter().map(Violation::to_string).collect();
        Err(MubeError::ConstraintConflict {
            detail: format!(
                "solution failed post-solve validation: {}",
                detail.join("; ")
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::{GlobalAttribute, MediatedSchema};
    use crate::ids::AttrId;
    use crate::matchop::IdentityMatcher;
    use crate::qefs::data_only_qefs;
    use crate::schema::Schema;
    use crate::source::SourceSpec;
    use std::collections::BTreeSet;

    fn universe(n: u32) -> Arc<Universe> {
        let mut b = Universe::builder();
        for i in 0..n {
            b.add_source(
                SourceSpec::new(format!("s{i}"), Schema::new(["x", "y"]))
                    .cardinality(100 + u64::from(i)),
            );
        }
        Arc::new(b.build().unwrap())
    }

    fn solved(n: u32, constraints: Constraints) -> (SolutionValidator, Solution) {
        let problem = Problem::new(
            universe(n),
            Arc::new(IdentityMatcher),
            data_only_qefs(),
            constraints,
        )
        .unwrap();
        let solution = problem.solve(&mube_opt::TabuSearch::default(), 3).unwrap();
        (SolutionValidator::for_problem(&problem), solution)
    }

    #[test]
    fn genuine_solutions_validate() {
        let (validator, solution) = solved(6, Constraints::with_max_sources(3).beta(1));
        assert_eq!(validator.check(&solution), Vec::new());
        assert!(validator.validate(&solution).is_ok());
    }

    #[test]
    fn oversized_and_empty_selections_rejected() {
        let (validator, mut solution) = solved(6, Constraints::with_max_sources(3).beta(1));
        for i in 0..6 {
            solution.sources.insert(SourceId(i));
        }
        assert!(validator
            .check(&solution)
            .iter()
            .any(|v| matches!(v, Violation::TooManySources { .. })));
        solution.sources.clear();
        solution.schema = MediatedSchema::empty();
        assert!(validator
            .check(&solution)
            .contains(&Violation::EmptySelection));
    }

    #[test]
    fn missing_required_source_rejected() {
        let constraints = Constraints::with_max_sources(3)
            .beta(1)
            .require_source(SourceId(2));
        let (validator, mut solution) = solved(6, constraints);
        solution.sources.remove(&SourceId(2));
        let violations = validator.check(&solution);
        assert!(
            violations.contains(&Violation::MissingRequiredSource {
                source: SourceId(2)
            }),
            "{violations:?}"
        );
    }

    #[test]
    fn unknown_source_rejected() {
        let (validator, mut solution) = solved(6, Constraints::with_max_sources(4).beta(1));
        solution.sources.insert(SourceId(77));
        assert!(validator
            .check(&solution)
            .contains(&Violation::UnknownSource {
                source: SourceId(77)
            }));
    }

    #[test]
    fn ga_outside_selection_rejected() {
        let (validator, mut solution) = solved(6, Constraints::with_max_sources(3).beta(1));
        let outside: BTreeSet<SourceId> = (0..6)
            .map(SourceId)
            .filter(|s| !solution.sources.contains(s))
            .collect();
        let stranger = *outside.iter().next().unwrap();
        let mut gas: Vec<GlobalAttribute> = solution.schema.gas().to_vec();
        gas.push(GlobalAttribute::singleton(AttrId::new(stranger, 0)));
        solution.schema = MediatedSchema::new(gas);
        let violations = validator.check(&solution);
        assert!(
            violations.iter().any(
                |v| matches!(v, Violation::GaOutsideSelection { source, .. } if *source == stranger)
            ),
            "{violations:?}"
        );
    }

    #[test]
    fn overlapping_schema_rejected() {
        let (validator, mut solution) = solved(6, Constraints::with_max_sources(3).beta(1));
        let first = *solution.sources.iter().next().unwrap();
        // Duplicate one attribute into two GAs.
        let gas = vec![
            GlobalAttribute::singleton(AttrId::new(first, 0)),
            GlobalAttribute::try_new([
                AttrId::new(first, 0),
                AttrId::new(*solution.sources.iter().nth(1).unwrap(), 0),
            ])
            .unwrap(),
        ];
        solution.schema = MediatedSchema::new(gas);
        assert!(validator
            .check(&solution)
            .contains(&Violation::SchemaOverlap));
    }

    #[test]
    fn dropped_required_ga_rejected() {
        let ga =
            GlobalAttribute::try_new([AttrId::new(SourceId(0), 0), AttrId::new(SourceId(1), 0)])
                .unwrap();
        let constraints = Constraints::with_max_sources(3).beta(1).require_ga(ga);
        let (validator, mut solution) = solved(6, constraints);
        assert!(validator.check(&solution).is_empty());
        // Mutate: drop the GA that covers the constraint.
        let gas: Vec<GlobalAttribute> = solution
            .schema
            .gas()
            .iter()
            .filter(|g| !g.touches_source(SourceId(0)))
            .cloned()
            .collect();
        solution.schema = MediatedSchema::new(gas);
        let violations = validator.check(&solution);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::RequiredGaNotCovered { ga_index: 0 })),
            "{violations:?}"
        );
    }

    #[test]
    fn unspanned_pin_rejected() {
        let constraints = Constraints::with_max_sources(3)
            .beta(1)
            .require_source(SourceId(1));
        let (validator, mut solution) = solved(6, constraints);
        let gas: Vec<GlobalAttribute> = solution
            .schema
            .gas()
            .iter()
            .filter(|g| !g.touches_source(SourceId(1)))
            .cloned()
            .collect();
        solution.schema = MediatedSchema::new(gas);
        let violations = validator.check(&solution);
        assert!(
            violations.contains(&Violation::ConstraintSourceUnspanned {
                source: SourceId(1)
            }),
            "{violations:?}"
        );
    }

    #[test]
    fn beta_violation_rejected() {
        let (validator, mut solution) = solved(6, Constraints::with_max_sources(3).beta(1));
        // Tighten beta after the fact: singleton GAs become violations.
        let tightened = SolutionValidator::new(
            Arc::clone(&validator.universe),
            Constraints {
                beta: 3,
                ..validator.constraints.clone()
            },
        );
        solution.schema = MediatedSchema::new(vec![GlobalAttribute::singleton(AttrId::new(
            *solution.sources.iter().next().unwrap(),
            0,
        ))]);
        let violations = tightened.check(&solution);
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::BetaViolation {
                    len: 1,
                    beta: 3,
                    ..
                }
            )),
            "{violations:?}"
        );
    }

    #[test]
    fn quality_bounds_and_consistency_enforced() {
        let (validator, solution) = solved(6, Constraints::with_max_sources(3).beta(1));

        let mut wild = solution.clone();
        wild.quality = 1.5;
        assert!(validator
            .check(&wild)
            .iter()
            .any(|v| matches!(v, Violation::QualityOutOfRange { .. })));

        let mut nan = solution.clone();
        nan.quality = f64::NAN;
        assert!(validator
            .check(&nan)
            .iter()
            .any(|v| matches!(v, Violation::QualityOutOfRange { .. })));

        let mut skewed = solution.clone();
        if let Some((_, _, score)) = skewed.qef_scores.first_mut() {
            *score += 0.5;
        }
        let violations = validator.check(&skewed);
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::QualityInconsistent { .. } | Violation::QefScoreOutOfRange { .. }
            )),
            "{violations:?}"
        );

        let mut unnormalized = solution;
        if let Some((_, weight, _)) = unnormalized.qef_scores.first_mut() {
            *weight = 0.0;
        }
        assert!(validator
            .check(&unnormalized)
            .iter()
            .any(|v| matches!(v, Violation::QefWeightsUnnormalized { .. })));
    }

    #[test]
    fn validate_folds_into_error() {
        let (validator, mut solution) = solved(6, Constraints::with_max_sources(3).beta(1));
        solution.quality = 2.0;
        let err = validator.validate(&solution).unwrap_err();
        assert!(matches!(err, MubeError::ConstraintConflict { .. }));
        assert!(err.to_string().contains("post-solve validation"));
    }
}

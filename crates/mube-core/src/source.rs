//! Data sources and the universe of sources.
//!
//! From `µBE`'s point of view (§2.1 of the paper) a data source consists of a
//! schema, a set of tuples, and a set of non-functional characteristics. The
//! tuples themselves never leave the source: a cooperating source exports its
//! *cardinality* (tuple count) and a PCSA *hash signature* of its tuples;
//! uncooperative sources export neither and are simply excluded from the
//! data-dependent quality metrics (they score zero coverage/redundancy).

use std::collections::BTreeMap;

use mube_sketch::PcsaSignature;

use crate::error::MubeError;
use crate::ids::{AttrId, SourceId};
use crate::schema::Schema;

/// Non-functional per-source characteristics (latency, availability, fees,
/// MTTF, reputation, ...), keyed by name. Values are positive reals of any
/// magnitude; QEF aggregation functions normalize them (§5).
pub type Characteristics = BTreeMap<String, f64>;

/// The canonical form of a source name: lowercase with everything but
/// letters and digits dropped, so case and punctuation variants of one name
/// (`Movie DB`, `movie_db`, `MOVIE-DB`) collapse to the same key.
///
/// This is the *single* definition of name equivalence used across the
/// workspace: the MUBE016 near-duplicate diagnostic in `mube-audit` and the
/// LSH blocking front end in `mube-scale` both derive their keys from it, so
/// the two near-duplicate detectors can never disagree about which names are
/// "the same". Returns an empty string for names with no alphanumerics.
pub fn canonical_name_key(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(char::to_lowercase)
        .collect()
}

/// One data source.
#[derive(Debug, Clone)]
pub struct Source {
    id: SourceId,
    name: String,
    schema: Schema,
    cardinality: u64,
    signature: Option<PcsaSignature>,
    characteristics: Characteristics,
}

impl Source {
    /// The source's id within its universe.
    pub fn id(&self) -> SourceId {
        self.id
    }

    /// Human-readable name (e.g. the site's hostname).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The source's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples at the source, as reported by the source.
    ///
    /// Zero for uncooperative sources that did not report a cardinality.
    pub fn cardinality(&self) -> u64 {
        self.cardinality
    }

    /// The PCSA signature of the source's tuples, if the source cooperates.
    pub fn signature(&self) -> Option<&PcsaSignature> {
        self.signature.as_ref()
    }

    /// True if the source exported both a cardinality and a signature, i.e.
    /// participates in the coverage/redundancy metrics.
    pub fn cooperates(&self) -> bool {
        self.signature.is_some()
    }

    /// Value of a named characteristic, if present.
    pub fn characteristic(&self, name: &str) -> Option<f64> {
        self.characteristics.get(name).copied()
    }

    /// All characteristics.
    pub fn characteristics(&self) -> &Characteristics {
        &self.characteristics
    }

    /// Ids of this source's attributes.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.schema.len() as u32).map(move |j| AttrId::new(self.id, j))
    }
}

/// Builder for one source, used through [`UniverseBuilder::add_source`].
#[derive(Debug)]
pub struct SourceSpec {
    name: String,
    schema: Schema,
    cardinality: u64,
    signature: Option<PcsaSignature>,
    characteristics: Characteristics,
}

impl SourceSpec {
    /// Starts describing a source with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        SourceSpec {
            name: name.into(),
            schema,
            cardinality: 0,
            signature: None,
            characteristics: Characteristics::new(),
        }
    }

    /// Sets the reported tuple count.
    pub fn cardinality(mut self, cardinality: u64) -> Self {
        self.cardinality = cardinality;
        self
    }

    /// Attaches the source's PCSA signature.
    pub fn signature(mut self, signature: PcsaSignature) -> Self {
        self.signature = Some(signature);
        self
    }

    /// Sets one named characteristic.
    pub fn characteristic(mut self, name: impl Into<String>, value: f64) -> Self {
        self.characteristics.insert(name.into(), value);
        self
    }
}

/// The universe `U = {s_1, ..., s_N}` of candidate sources.
///
/// Built once via [`Universe::builder`]; immutable afterwards so it can be
/// shared freely across the matcher, the QEFs, and the optimizer.
#[derive(Debug, Clone)]
pub struct Universe {
    sources: Vec<Source>,
}

impl Universe {
    /// Starts building a universe.
    pub fn builder() -> UniverseBuilder {
        UniverseBuilder { specs: Vec::new() }
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True if there are no sources.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// The source with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this universe; ids are only minted
    /// by this universe's builder, so this indicates a logic error.
    pub fn source(&self, id: SourceId) -> &Source {
        &self.sources[id.index()]
    }

    /// The source with the given id, or `None` for a foreign id.
    pub fn get(&self, id: SourceId) -> Option<&Source> {
        self.sources.get(id.index())
    }

    /// Looks a source up by name (linear scan; universes are at most a few
    /// thousand sources).
    pub fn source_by_name(&self, name: &str) -> Option<&Source> {
        self.sources.iter().find(|s| s.name == name)
    }

    /// Iterates over all sources.
    pub fn sources(&self) -> impl Iterator<Item = &Source> {
        self.sources.iter()
    }

    /// Iterates over all source ids.
    pub fn source_ids(&self) -> impl Iterator<Item = SourceId> {
        (0..self.sources.len() as u32).map(SourceId)
    }

    /// The name of an attribute, by id.
    ///
    /// Returns `None` if the id refers to a source or position outside this
    /// universe.
    pub fn attr_name(&self, attr: AttrId) -> Option<&str> {
        self.get(attr.source)?
            .schema()
            .attr(attr.index as usize)
            .map(super::schema::Attribute::name)
    }

    /// Checks an attribute id refers into this universe.
    pub fn contains_attr(&self, attr: AttrId) -> bool {
        self.attr_name(attr).is_some()
    }

    /// Total number of attributes across all sources.
    pub fn total_attrs(&self) -> usize {
        self.sources.iter().map(|s| s.schema().len()).sum()
    }

    /// Total tuple count across all sources (Σ_{t∈U} |t|).
    pub fn total_cardinality(&self) -> u64 {
        self.sources.iter().map(|s| s.cardinality).sum()
    }
}

/// Incrementally assembles a [`Universe`], assigning dense source ids.
#[derive(Debug)]
pub struct UniverseBuilder {
    specs: Vec<SourceSpec>,
}

impl UniverseBuilder {
    /// Adds a source; returns the id it will have in the built universe.
    pub fn add_source(&mut self, spec: SourceSpec) -> SourceId {
        let id = SourceId(self.specs.len() as u32);
        self.specs.push(spec);
        id
    }

    /// Finalizes the universe.
    ///
    /// Fails if the universe is empty, any source has an empty schema, or two
    /// cooperating sources carry signatures with mismatched configurations
    /// (they would not be OR-composable).
    pub fn build(self) -> Result<Universe, MubeError> {
        if self.specs.is_empty() {
            return Err(MubeError::EmptyUniverse);
        }
        let mut first_config = None;
        for (i, spec) in self.specs.iter().enumerate() {
            if spec.schema.is_empty() {
                return Err(MubeError::EmptySchema {
                    source: spec.name.clone(),
                });
            }
            if let Some(sig) = &spec.signature {
                match &first_config {
                    None => first_config = Some(sig.config().clone()),
                    Some(cfg) if cfg != sig.config() => {
                        return Err(MubeError::SignatureConfigMismatch {
                            source: self.specs[i].name.clone(),
                        });
                    }
                    _ => {}
                }
            }
        }
        let sources = self
            .specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| Source {
                id: SourceId(i as u32),
                name: spec.name,
                schema: spec.schema,
                cardinality: spec.cardinality,
                signature: spec.signature,
                characteristics: spec.characteristics,
            })
            .collect();
        Ok(Universe { sources })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_sketch::pcsa::PcsaConfig;

    fn sig(seed: u64, keys: std::ops::Range<u64>) -> PcsaSignature {
        let mut s = PcsaSignature::new(PcsaConfig::new(16, 32, seed));
        for k in keys {
            s.insert(k);
        }
        s
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = Universe::builder();
        let a = b.add_source(SourceSpec::new("a", Schema::new(["x"])));
        let c = b.add_source(SourceSpec::new("b", Schema::new(["y"])));
        assert_eq!(a, SourceId(0));
        assert_eq!(c, SourceId(1));
        let u = b.build().unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.source(a).name(), "a");
    }

    #[test]
    fn empty_universe_rejected() {
        assert!(matches!(
            Universe::builder().build(),
            Err(MubeError::EmptyUniverse)
        ));
    }

    #[test]
    fn empty_schema_rejected() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("bad", Schema::default()));
        assert!(matches!(b.build(), Err(MubeError::EmptySchema { .. })));
    }

    #[test]
    fn mismatched_signatures_rejected() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("a", Schema::new(["x"])).signature(sig(1, 0..10)));
        b.add_source(SourceSpec::new("b", Schema::new(["y"])).signature(sig(2, 0..10)));
        assert!(matches!(
            b.build(),
            Err(MubeError::SignatureConfigMismatch { .. })
        ));
    }

    #[test]
    fn totals_and_lookup() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("a", Schema::new(["x", "y"])).cardinality(10));
        b.add_source(SourceSpec::new("b", Schema::new(["z"])).cardinality(5));
        let u = b.build().unwrap();
        assert_eq!(u.total_cardinality(), 15);
        assert_eq!(u.total_attrs(), 3);
        assert_eq!(u.attr_name(AttrId::new(SourceId(0), 1)), Some("y"));
        assert_eq!(u.attr_name(AttrId::new(SourceId(0), 2)), None);
        assert_eq!(u.attr_name(AttrId::new(SourceId(9), 0)), None);
        assert!(u.source_by_name("b").is_some());
        assert!(u.source_by_name("zzz").is_none());
    }

    #[test]
    fn cooperation_flag() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("coop", Schema::new(["x"])).signature(sig(1, 0..5)));
        b.add_source(SourceSpec::new("shy", Schema::new(["y"])));
        let u = b.build().unwrap();
        assert!(u.source(SourceId(0)).cooperates());
        assert!(!u.source(SourceId(1)).cooperates());
    }

    #[test]
    fn canonical_name_key_collapses_variants() {
        for variant in ["Movie DB", "movie_db", "MOVIE-DB", "movie.db", "movie db"] {
            assert_eq!(canonical_name_key(variant), "moviedb", "{variant}");
        }
        assert_ne!(
            canonical_name_key("site0001"),
            canonical_name_key("site0002")
        );
        assert_eq!(canonical_name_key("___"), "");
        assert_eq!(canonical_name_key("Straße"), "straße");
    }

    #[test]
    fn characteristics_roundtrip() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("a", Schema::new(["x"])).characteristic("mttf", 80.0));
        let u = b.build().unwrap();
        assert_eq!(u.source(SourceId(0)).characteristic("mttf"), Some(80.0));
        assert_eq!(u.source(SourceId(0)).characteristic("latency"), None);
    }
}

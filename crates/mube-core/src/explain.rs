//! Solution explanation: why is each source in the solution?
//!
//! The iterative exploration the paper advocates works best when the user
//! understands what each source contributes before pinning or dropping it.
//! This module computes **leave-one-out marginal contributions**: for every
//! selected source, the drop in overall quality (and in each QEF) if that
//! source were removed. Sources the user pinned are analyzed too — a pinned
//! source with a negative marginal is exactly the feedback signal "your
//! constraint is costing you quality".

use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;

use crate::diag::{Diagnostic, Severity};
use crate::ids::SourceId;
use crate::problem::{CandidateEval, Problem};
use crate::solution::Solution;
use crate::source::Universe;

/// Marginal contribution of one selected source.
#[derive(Debug, Clone)]
pub struct SourceContribution {
    /// The source.
    pub source: SourceId,
    /// Quality with the source minus quality without it. Positive = the
    /// source pays its way.
    pub quality_delta: f64,
    /// Per-QEF `(name, delta)` — where the contribution comes from.
    pub qef_deltas: Vec<(String, f64)>,
    /// True if removing the source makes the candidate infeasible (it is
    /// required by a constraint, or the schema would no longer be valid on
    /// the constraint sources).
    pub removal_infeasible: bool,
}

/// A full explanation of a solution.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Contributions, sorted most-valuable first.
    pub contributions: Vec<SourceContribution>,
}

/// Computes leave-one-out contributions for every source of a solution.
///
/// Costs `|S|` extra objective evaluations (one re-match per source), which
/// at interactive scale is well under a second.
pub fn explain(problem: &Problem, solution: &Solution) -> Explanation {
    let mut contributions = Vec::with_capacity(solution.sources.len());
    for &source in &solution.sources {
        let mut without: BTreeSet<SourceId> = solution.sources.clone();
        without.remove(&source);
        let contribution = match problem.evaluate(&without) {
            CandidateEval::Feasible(reduced) => {
                let qef_deltas = solution
                    .qef_scores
                    .iter()
                    .map(|(name, _, score)| {
                        let reduced_score = reduced.qef_score(name).unwrap_or(0.0);
                        (name.clone(), score - reduced_score)
                    })
                    .collect();
                SourceContribution {
                    source,
                    quality_delta: solution.quality - reduced.quality,
                    qef_deltas,
                    removal_infeasible: false,
                }
            }
            CandidateEval::Infeasible => SourceContribution {
                source,
                quality_delta: f64::INFINITY,
                qef_deltas: Vec::new(),
                removal_infeasible: true,
            },
        };
        contributions.push(contribution);
    }
    // total_cmp: a user-written QEF returning NaN should not panic the
    // explanation (NaN sorts last, after +∞ for required sources).
    contributions.sort_by(|a, b| b.quality_delta.total_cmp(&a.quality_delta));
    Explanation { contributions }
}

impl Explanation {
    /// The contribution entry for one source, if it was in the solution.
    pub fn for_source(&self, source: SourceId) -> Option<&SourceContribution> {
        self.contributions.iter().find(|c| c.source == source)
    }

    /// Sources whose removal would *improve* quality — candidates for the
    /// user to investigate (usually held in place by a constraint or by a
    /// QEF the user may want to down-weight).
    pub fn dead_weight(&self) -> impl Iterator<Item = &SourceContribution> {
        self.contributions
            .iter()
            .filter(|c| !c.removal_infeasible && c.quality_delta < 0.0)
    }

    /// Renders with resolved source names.
    pub fn display<'a>(&'a self, universe: &'a Universe) -> ExplanationDisplay<'a> {
        ExplanationDisplay {
            explanation: self,
            universe,
        }
    }
}

/// Helper returned by [`Explanation::display`].
pub struct ExplanationDisplay<'a> {
    explanation: &'a Explanation,
    universe: &'a Universe,
}

impl fmt::Display for ExplanationDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.explanation.contributions {
            // Tolerate a foreign universe: fall back to the raw id.
            let name = self
                .universe
                .get(c.source)
                .map_or_else(|| c.source.to_string(), |s| s.name().to_string());
            if c.removal_infeasible {
                writeln!(f, "  {name}: required (removal infeasible)")?;
                continue;
            }
            let top = c
                .qef_deltas
                .iter()
                .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                .map(|(n, d)| format!("{n} {d:+.4}"))
                .unwrap_or_default();
            writeln!(f, "  {name}: ΔQ = {:+.4} (mostly {top})", c.quality_delta)?;
        }
        Ok(())
    }
}

/// Renders a batch of diagnostics (see [`crate::diag`]) as a lint report:
/// one [`Diagnostic::display`] block per finding, errors before warnings,
/// followed by a summary line. The empty report is the string
/// `"no problems found"`.
pub fn lint_report(diagnostics: &[Diagnostic], universe: &Universe) -> String {
    if diagnostics.is_empty() {
        return "no problems found".to_string();
    }
    let mut ordered: Vec<&Diagnostic> = diagnostics.iter().collect();
    ordered.sort_by_key(|d| (d.severity(), d.code));
    let mut out = String::new();
    for d in &ordered {
        writeln!(out, "{}", d.display(universe)).expect("string write");
    }
    let errors = ordered
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count();
    let warnings = ordered.len() - errors;
    write!(
        out,
        "{errors} error{}, {warnings} warning{}",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" }
    )
    .expect("string write");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraints;
    use crate::matchop::IdentityMatcher;
    use crate::qefs::data_only_qefs;
    use crate::schema::Schema;
    use crate::source::SourceSpec;
    use std::sync::Arc;

    fn problem() -> Problem {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("big", Schema::new(["x"])).cardinality(900));
        b.add_source(SourceSpec::new("small", Schema::new(["y"])).cardinality(100));
        b.add_source(SourceSpec::new("other", Schema::new(["z"])).cardinality(500));
        Problem::new(
            Arc::new(b.build().unwrap()),
            Arc::new(IdentityMatcher),
            data_only_qefs(),
            Constraints::with_max_sources(3).beta(1),
        )
        .unwrap()
    }

    fn solution_of(problem: &Problem, picks: &[u32]) -> Solution {
        let sources: BTreeSet<SourceId> = picks.iter().map(|&i| SourceId(i)).collect();
        match problem.evaluate(&sources) {
            CandidateEval::Feasible(s) => s,
            CandidateEval::Infeasible => panic!("fixture candidates are feasible"),
        }
    }

    #[test]
    fn bigger_sources_contribute_more_cardinality() {
        let p = problem();
        let sol = solution_of(&p, &[0, 1]);
        let ex = explain(&p, &sol);
        let big = ex.for_source(SourceId(0)).unwrap();
        let small = ex.for_source(SourceId(1)).unwrap();
        assert!(big.quality_delta > small.quality_delta);
        // Sorted most-valuable first.
        assert_eq!(ex.contributions[0].source, SourceId(0));
    }

    #[test]
    fn required_source_removal_is_infeasible() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("a", Schema::new(["x"])).cardinality(10));
        b.add_source(SourceSpec::new("b", Schema::new(["y"])).cardinality(10));
        let p = Problem::new(
            Arc::new(b.build().unwrap()),
            Arc::new(IdentityMatcher),
            data_only_qefs(),
            Constraints::with_max_sources(2)
                .beta(1)
                .require_source(SourceId(1)),
        )
        .unwrap();
        let sol = solution_of(&p, &[0, 1]);
        let ex = explain(&p, &sol);
        assert!(ex.for_source(SourceId(1)).unwrap().removal_infeasible);
        assert!(!ex.for_source(SourceId(0)).unwrap().removal_infeasible);
    }

    #[test]
    fn qef_deltas_sum_to_quality_delta() {
        let p = problem();
        let sol = solution_of(&p, &[0, 2]);
        let ex = explain(&p, &sol);
        for c in &ex.contributions {
            if c.removal_infeasible {
                continue;
            }
            // ΔQ = Σ w_i ΔF_i; deltas here are unweighted per-QEF scores,
            // so recombine with the weights from the solution.
            let recombined: f64 = sol
                .qef_scores
                .iter()
                .zip(&c.qef_deltas)
                .map(|((_, w, _), (_, d))| w * d)
                .sum();
            assert!((recombined - c.quality_delta).abs() < 1e-9);
        }
    }

    #[test]
    fn dead_weight_detects_harmful_sources() {
        let p = problem();
        // A single-source solution has no dead weight by construction.
        let sol = solution_of(&p, &[0]);
        let ex = explain(&p, &sol);
        // Removing the only source leaves an empty (infeasible) candidate.
        assert!(ex.contributions[0].removal_infeasible);
        assert_eq!(ex.dead_weight().count(), 0);
    }

    #[test]
    fn display_renders_names() {
        let p = problem();
        let sol = solution_of(&p, &[0, 1]);
        let ex = explain(&p, &sol);
        let text = ex.display(p.universe()).to_string();
        assert!(text.contains("big"));
        assert!(text.contains("ΔQ"));
    }

    #[test]
    fn lint_report_orders_and_summarizes() {
        use crate::diag::{DiagCode, Diagnostic};
        let p = problem();
        let diagnostics = vec![
            Diagnostic::new(DiagCode::ZeroCardinalitySource, "no tuples")
                .with_sources([SourceId(1)]),
            Diagnostic::new(DiagCode::ZeroMaxSources, "m = 0"),
        ];
        let text = lint_report(&diagnostics, p.universe());
        assert!(text.contains("1 error, 1 warning"), "{text}");
        // Errors come first even though they were pushed second.
        let err_pos = text.find("MUBE010").unwrap();
        let warn_pos = text.find("MUBE012").unwrap();
        assert!(err_pos < warn_pos, "{text}");
        assert_eq!(lint_report(&[], p.universe()), "no problems found");
    }
}

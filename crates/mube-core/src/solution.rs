//! Solutions: the output of one `µBE` iteration.
//!
//! A solution bundles the selected sources, the generated mediated schema,
//! the overall quality, and the per-QEF breakdown. Because `µBE`'s interaction
//! model feeds the *output* of one iteration back as *constraints* of the
//! next, solutions also know how to diff themselves against each other
//! (which sources / GAs changed) — this powers the weight-perturbation
//! robustness experiment (§7.4) and the session history view.

use std::collections::BTreeSet;
use std::fmt;

use crate::ga::{GlobalAttribute, MediatedSchema};
use crate::ids::SourceId;
use crate::source::Universe;

/// One data-integration solution: sources + mediated schema + quality.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The selected sources `S`.
    pub sources: BTreeSet<SourceId>,
    /// The mediated schema `M` generated on `S` (after β filtering).
    pub schema: MediatedSchema,
    /// Overall quality `Q(S)` — the maximized objective.
    pub quality: f64,
    /// Per-QEF `(name, weight, score)` breakdown.
    pub qef_scores: Vec<(String, f64, f64)>,
    /// Objective evaluations the optimizer spent finding this solution.
    pub evaluations: u64,
    /// True if the solve was cut short by a deadline or explicit
    /// cancellation; the solution is then the best incumbent found up to
    /// that point (anytime semantics), still fully evaluated and feasible.
    pub timed_out: bool,
}

impl Solution {
    /// The score of a named QEF in this solution.
    pub fn qef_score(&self, name: &str) -> Option<f64> {
        self.qef_scores
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, _, s)| s)
    }

    /// Differences between two solutions, for session feedback and the
    /// robustness experiments.
    pub fn diff(&self, other: &Solution) -> SolutionDiff {
        let added: BTreeSet<SourceId> = other.sources.difference(&self.sources).copied().collect();
        let removed: BTreeSet<SourceId> =
            self.sources.difference(&other.sources).copied().collect();
        // A GA "changed" if it is not a subset of any GA on the other side.
        let gas_changed = self
            .schema
            .gas_not_in(&other.schema)
            .max(other.schema.gas_not_in(&self.schema));
        SolutionDiff {
            sources_added: added,
            sources_removed: removed,
            gas_changed,
        }
    }

    /// Renders a human-readable report.
    pub fn display<'a>(&'a self, universe: &'a Universe) -> SolutionDisplay<'a> {
        SolutionDisplay {
            solution: self,
            universe,
        }
    }

    /// A GA of the schema by index — the handle users grab to turn an
    /// output GA into a GA constraint for the next iteration.
    pub fn ga(&self, index: usize) -> Option<&GlobalAttribute> {
        self.schema.gas().get(index)
    }

    /// Renders the solution as JSON — the machine-readable shape shared by
    /// `mube solve --json` and the `mube-serve` HTTP API:
    ///
    /// ```json
    /// {"quality":0.93,"evaluations":1234,"timed_out":false,
    ///  "sources":[{"id":3,"name":"site0003","cardinality":1000}],
    ///  "qefs":[{"name":"matching","weight":0.25,"score":0.9}],
    ///  "schema":[{"ga":0,"attrs":[{"source":"site0003","attr":"title"}]}]}
    /// ```
    ///
    /// Attribute entries whose ids fall outside `universe` (a foreign
    /// universe) degrade to the raw id strings rather than panicking.
    pub fn to_json(&self, universe: &Universe) -> String {
        let mut j = crate::jsonw::JsonBuf::new();
        j.begin_obj();
        j.key("quality").num_value(self.quality);
        j.key("evaluations").uint_value(self.evaluations);
        j.key("timed_out").bool_value(self.timed_out);
        j.key("sources").begin_arr();
        for &s in &self.sources {
            j.begin_obj();
            j.key("id").uint_value(u64::from(s.0));
            match universe.get(s) {
                Some(src) => {
                    j.key("name").str_value(src.name());
                    j.key("cardinality").uint_value(src.cardinality());
                }
                None => {
                    j.key("name").str_value(&s.to_string());
                    j.key("cardinality").uint_value(0);
                }
            }
            j.end_obj();
        }
        j.end_arr();
        j.key("qefs").begin_arr();
        for (name, weight, score) in &self.qef_scores {
            j.begin_obj();
            j.key("name").str_value(name);
            j.key("weight").num_value(*weight);
            j.key("score").num_value(*score);
            j.end_obj();
        }
        j.end_arr();
        j.key("schema").begin_arr();
        for (i, ga) in self.schema.gas().iter().enumerate() {
            j.begin_obj();
            j.key("ga").uint_value(i as u64);
            j.key("attrs").begin_arr();
            for &attr in ga.attrs() {
                j.begin_obj();
                let source_name = universe
                    .get(attr.source)
                    .map_or_else(|| attr.source.to_string(), |s| s.name().to_string());
                let attr_name = universe
                    .attr_name(attr)
                    .map_or_else(|| attr.to_string(), str::to_string);
                j.key("source").str_value(&source_name);
                j.key("attr").str_value(&attr_name);
                j.end_obj();
            }
            j.end_arr();
            j.end_obj();
        }
        j.end_arr();
        j.end_obj();
        j.finish()
    }
}

/// What changed between two solutions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolutionDiff {
    /// Sources in the new solution only.
    pub sources_added: BTreeSet<SourceId>,
    /// Sources in the old solution only.
    pub sources_removed: BTreeSet<SourceId>,
    /// Number of GAs present on one side but not subsumed by the other
    /// (symmetric; the max of the two directions).
    pub gas_changed: usize,
}

impl SolutionDiff {
    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.sources_added.is_empty() && self.sources_removed.is_empty() && self.gas_changed == 0
    }

    /// Total number of source membership changes.
    pub fn sources_changed(&self) -> usize {
        self.sources_added.len() + self.sources_removed.len()
    }
}

/// Helper returned by [`Solution::display`].
pub struct SolutionDisplay<'a> {
    solution: &'a Solution,
    universe: &'a Universe,
}

impl fmt::Display for SolutionDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Overall quality Q(S) = {:.4}", self.solution.quality)?;
        for (name, weight, score) in &self.solution.qef_scores {
            writeln!(f, "  {name:<12} w={weight:.2}  F={score:.4}")?;
        }
        writeln!(f, "Sources ({}):", self.solution.sources.len())?;
        for &s in &self.solution.sources {
            let src = self.universe.source(s);
            writeln!(f, "  {s}  {} ({} tuples)", src.name(), src.cardinality())?;
        }
        writeln!(f, "Mediated schema ({} GAs):", self.solution.schema.len())?;
        write!(f, "{}", self.solution.schema.display(self.universe))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::GlobalAttribute;
    use crate::ids::AttrId;
    use crate::schema::Schema;
    use crate::source::SourceSpec;

    fn a(s: u32, j: u32) -> AttrId {
        AttrId::new(SourceId(s), j)
    }

    fn sol(sources: &[u32], gas: Vec<GlobalAttribute>, quality: f64) -> Solution {
        Solution {
            sources: sources.iter().map(|&i| SourceId(i)).collect(),
            schema: MediatedSchema::new(gas),
            quality,
            qef_scores: vec![("matching".into(), 1.0, quality)],
            evaluations: 0,
            timed_out: false,
        }
    }

    #[test]
    fn diff_counts_source_changes() {
        let g = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        let s1 = sol(&[0, 1], vec![g.clone()], 0.5);
        let s2 = sol(&[0, 2], vec![g], 0.6);
        let d = s1.diff(&s2);
        assert_eq!(d.sources_added, [SourceId(2)].into());
        assert_eq!(d.sources_removed, [SourceId(1)].into());
        assert_eq!(d.sources_changed(), 2);
        assert_eq!(d.gas_changed, 0);
    }

    #[test]
    fn diff_counts_ga_changes() {
        let g1 = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        let g2 = GlobalAttribute::try_new([a(0, 1), a(1, 1)]).unwrap();
        let s1 = sol(&[0, 1], vec![g1.clone()], 0.5);
        let s2 = sol(&[0, 1], vec![g1, g2], 0.5);
        assert_eq!(s1.diff(&s2).gas_changed, 1);
        // Identical solutions → empty diff.
        assert!(s2.diff(&s2).is_empty());
    }

    #[test]
    fn ga_subset_does_not_count_as_change() {
        // s2's GA extends s1's GA: s1's GA is subsumed, so only the
        // direction "s2 has a GA not in s1" counts.
        let small = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        let big = GlobalAttribute::try_new([a(0, 0), a(1, 0), a(2, 0)]).unwrap();
        let s1 = sol(&[0, 1], vec![small], 0.5);
        let s2 = sol(&[0, 1, 2], vec![big], 0.5);
        assert_eq!(s1.diff(&s2).gas_changed, 1);
    }

    #[test]
    fn qef_score_lookup() {
        let s = sol(&[0], vec![], 0.7);
        assert_eq!(s.qef_score("matching"), Some(0.7));
        assert_eq!(s.qef_score("coverage"), None);
    }

    #[test]
    fn to_json_renders_machine_shape() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("alpha", Schema::new(["x"])).cardinality(7));
        b.add_source(SourceSpec::new("beta", Schema::new(["x"])).cardinality(9));
        let u = b.build().unwrap();
        let ga = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        let s = sol(&[0, 1], vec![ga], 0.25);
        let json = s.to_json(&u);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains(r#""quality":0.25"#), "{json}");
        assert!(json.contains(r#""name":"alpha","cardinality":7"#), "{json}");
        assert!(json.contains(r#""qefs":[{"name":"matching"#), "{json}");
        assert!(
            json.contains(r#""attrs":[{"source":"alpha","attr":"x"}"#),
            "{json}"
        );
    }

    #[test]
    fn to_json_tolerates_foreign_universe() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("only", Schema::new(["x"])));
        let u = b.build().unwrap();
        // Source 9 does not exist in `u`.
        let s = sol(&[9], vec![GlobalAttribute::singleton(a(9, 0))], 0.1);
        let json = s.to_json(&u);
        assert!(json.contains(r#""name":"s9""#), "{json}");
    }

    #[test]
    fn display_renders() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("alpha", Schema::new(["x"])).cardinality(7));
        let u = b.build().unwrap();
        let s = sol(&[0], vec![GlobalAttribute::singleton(a(0, 0))], 0.9);
        let text = s.display(&u).to_string();
        assert!(text.contains("alpha"));
        assert!(text.contains("0.9000"));
        assert!(text.contains("GA0"));
    }
}

//! # mube-core — the `µBE` data-integration engine
//!
//! A from-scratch Rust implementation of **`µBE`** ("Matching By Example"),
//! the user-guided source-selection and schema-mediation tool of Aboulnaga &
//! El Gebaly (ICDE 2007). Given hundreds of candidate data sources, `µBE`
//! simultaneously *selects* a bounded subset and *mediates* a global schema
//! over it by solving a constrained combinatorial optimization problem, then
//! lets the user steer the answer across iterations by pinning sources,
//! providing example matchings (GA constraints), and re-weighting quality
//! dimensions.
//!
//! ## Crate layout
//!
//! * [`source`] — sources, schemas, characteristics, and the [`source::Universe`];
//! * [`ga`] — Global Attributes and mediated schemas (Definitions 1–3);
//! * [`constraints`] — the user constraint set `(C, G, m, θ, β)`;
//! * [`qef`] / [`qefs`] — the quality-evaluation framework and the paper's
//!   built-in QEFs (matching, cardinality, coverage, redundancy, and
//!   characteristic aggregations such as `wsum`);
//! * [`matchop`] — the pluggable `Match(S)` operator (the reference
//!   clustering matcher lives in the `mube-match` crate);
//! * [`problem`] — the optimization problem, bridging to the solvers in
//!   `mube-opt`;
//! * [`session`] — the iterative feedback loop;
//! * [`solution`] — solutions and solution diffs.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use mube_core::constraints::Constraints;
//! use mube_core::matchop::IdentityMatcher;
//! use mube_core::problem::Problem;
//! use mube_core::qefs::data_only_qefs;
//! use mube_core::schema::Schema;
//! use mube_core::session::Session;
//! use mube_core::source::{SourceSpec, Universe};
//! use mube_opt::TabuSearch;
//!
//! // Describe a (tiny) universe of sources.
//! let mut builder = Universe::builder();
//! builder.add_source(SourceSpec::new("books-r-us", Schema::new(["title", "author"]))
//!     .cardinality(50_000));
//! builder.add_source(SourceSpec::new("libropolis", Schema::new(["book title", "writer"]))
//!     .cardinality(80_000));
//! let universe = Arc::new(builder.build().unwrap());
//!
//! // Pose the optimization problem and run a session iteration.
//! let problem = Problem::new(
//!     universe,
//!     Arc::new(IdentityMatcher), // swap in mube_match::ClusterMatcher for real matching
//!     data_only_qefs(),
//!     Constraints::with_max_sources(2).beta(1),
//! ).unwrap();
//! let mut session = Session::new(problem, Box::new(TabuSearch::default()), 42);
//! let solution = session.run().unwrap();
//! assert!(!solution.sources.is_empty());
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod constraints;
pub mod delta;
pub mod diag;
pub mod error;
pub mod explain;
pub mod ga;
pub mod ids;
pub mod jsonw;
pub mod matchop;
pub mod overlap;
pub mod problem;
pub mod qef;
pub mod qefs;
pub mod schema;
pub mod session;
pub mod solution;
pub mod source;
pub mod validate;

pub use constraints::Constraints;
pub use delta::{DeltaEval, DeltaMove, DeltaObjective};
pub use diag::{DiagCode, Diagnostic, Severity};
pub use error::MubeError;
pub use explain::{explain, lint_report, Explanation, SourceContribution};
pub use ga::{GlobalAttribute, MediatedSchema};
pub use ids::{AttrId, SourceId};
pub use matchop::{MatchOperator, MatchOutcome};
pub use overlap::{overlap_matrix, OverlapMatrix};
pub use problem::{CandidateEval, Problem};
pub use qef::{DeltaClass, EvalContext, EvalInput, Qef, WeightedQefs};
pub use schema::{Attribute, Schema};
pub use session::Session;
pub use solution::{Solution, SolutionDiff};
pub use source::{canonical_name_key, Source, SourceSpec, Universe, UniverseBuilder};
pub use validate::{SolutionValidator, Violation};

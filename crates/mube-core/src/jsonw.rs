//! Minimal JSON *writing* helpers (the workspace has no serde).
//!
//! One escaping routine and one comma-tracking buffer, shared by every
//! component that emits machine-readable output: `mube-audit`'s
//! `Report::to_json`, the CLI's `solve --json` / `lint --json`, and the
//! `mube-serve` HTTP responses. Keeping them in one place means one set of
//! escaping bugs to fix and byte-identical output across surfaces.

use std::fmt::Write as _;

/// Escapes and quotes `s` as a JSON string literal.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number. JSON has no NaN/±∞, so non-finite
/// values become `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A streaming JSON builder with automatic comma placement.
///
/// Call [`JsonBuf::begin_obj`] / [`JsonBuf::begin_arr`] to open containers,
/// [`JsonBuf::key`] before each object member, and the `*_value` methods for
/// leaves; separators are inserted for you. The builder does not validate
/// nesting — callers own well-formedness — but gets the commas right, which
/// is the part hand-rolled JSON reliably breaks.
///
/// ```
/// use mube_core::jsonw::JsonBuf;
/// let mut j = JsonBuf::new();
/// j.begin_obj();
/// j.key("ok").bool_value(true);
/// j.key("scores").begin_arr();
/// j.num_value(1.0);
/// j.num_value(0.5);
/// j.end_arr();
/// j.end_obj();
/// assert_eq!(j.finish(), r#"{"ok":true,"scores":[1,0.5]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
    /// Per open container: has it emitted an entry yet?
    stack: Vec<bool>,
    /// The next value completes a `"key":` pair — no separator before it.
    after_key: bool,
}

impl JsonBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        JsonBuf::default()
    }

    fn pre_value(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(has_entry) = self.stack.last_mut() {
            if *has_entry {
                self.out.push(',');
            }
            *has_entry = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_obj(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Closes the innermost object (`}`).
    pub fn end_obj(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push('}');
        self
    }

    /// Opens an array (`[`).
    pub fn begin_arr(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('[');
        self.stack.push(false);
        self
    }

    /// Closes the innermost array (`]`).
    pub fn end_arr(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push(']');
        self
    }

    /// Emits an object key; the next emitted value belongs to it.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pre_value();
        self.out.push_str(&string(k));
        self.out.push(':');
        self.after_key = true;
        self
    }

    /// Emits a string value.
    pub fn str_value(&mut self, s: &str) -> &mut Self {
        self.pre_value();
        self.out.push_str(&string(s));
        self
    }

    /// Emits a number value (`null` for non-finite floats).
    pub fn num_value(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        self.out.push_str(&number(v));
        self
    }

    /// Emits an unsigned integer value.
    pub fn uint_value(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        write!(self.out, "{v}").expect("string write");
        self
    }

    /// Emits a boolean value.
    pub fn bool_value(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Emits `null`.
    pub fn null_value(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push_str("null");
        self
    }

    /// Emits pre-rendered JSON verbatim (with separator handling).
    pub fn raw_value(&mut self, json: &str) -> &mut Self {
        self.pre_value();
        self.out.push_str(json);
        self
    }

    /// The rendered JSON text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b"), r#""a\"b""#);
        assert_eq!(string("a\\b"), r#""a\\b""#);
        assert_eq!(string("a\nb\tc"), r#""a\nb\tc""#);
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("é µ"), "\"é µ\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn builder_places_commas() {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("a").uint_value(1);
        j.key("b").begin_arr();
        j.str_value("x");
        j.str_value("y");
        j.begin_obj();
        j.key("c").null_value();
        j.end_obj();
        j.end_arr();
        j.key("d").bool_value(false);
        j.end_obj();
        assert_eq!(j.finish(), r#"{"a":1,"b":["x","y",{"c":null}],"d":false}"#);
    }

    #[test]
    fn empty_containers() {
        let mut j = JsonBuf::new();
        j.begin_arr();
        j.begin_obj();
        j.end_obj();
        j.begin_arr();
        j.end_arr();
        j.end_arr();
        assert_eq!(j.finish(), "[{},[]]");
    }

    #[test]
    fn raw_value_separates() {
        let mut j = JsonBuf::new();
        j.begin_arr();
        j.raw_value("1");
        j.raw_value("[2]");
        j.end_arr();
        assert_eq!(j.finish(), "[1,[2]]");
    }
}

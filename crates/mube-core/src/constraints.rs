//! User constraints on the optimization problem (§2.4 of the paper).
//!
//! Users guide `µBE` with two kinds of constraints: *source constraints* (a
//! particular source must be part of the solution) and *GA constraints* (a
//! partial GA the output mediated schema must subsume — "matching by
//! example"). Together with the scalar parameters `m` (max sources), `θ`
//! (matching threshold), and `β` (minimum GA size), they define the feasible
//! region of the search.

use std::collections::BTreeSet;

use crate::error::MubeError;
use crate::ga::GlobalAttribute;
use crate::ids::SourceId;
use crate::source::Universe;

/// The constraint set `(C, G, m, θ, β)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraints {
    /// `C`: sources that must appear in the solution.
    pub required_sources: BTreeSet<SourceId>,
    /// `G`: partial GAs the output schema must subsume.
    pub required_gas: Vec<GlobalAttribute>,
    /// `m`: maximum number of sources the user is willing to select.
    pub max_sources: usize,
    /// `θ`: lower bound on matching quality for every GA not in `G`.
    pub theta: f64,
    /// `β`: lower bound on the number of attributes in every GA not in `G`.
    pub beta: usize,
}

impl Constraints {
    /// Unconstrained defaults matching the paper's experiments: `θ = 0.75`,
    /// `β = 2` (a GA must actually match something), and a caller-chosen `m`.
    pub fn with_max_sources(max_sources: usize) -> Self {
        Constraints {
            required_sources: BTreeSet::new(),
            required_gas: Vec::new(),
            max_sources,
            theta: 0.75,
            beta: 2,
        }
    }

    /// Adds a source constraint (builder style).
    pub fn require_source(mut self, source: SourceId) -> Self {
        self.required_sources.insert(source);
        self
    }

    /// Adds a GA constraint (builder style).
    pub fn require_ga(mut self, ga: GlobalAttribute) -> Self {
        self.required_gas.push(ga);
        self
    }

    /// Sets the matching threshold (builder style).
    pub fn theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Sets the minimum GA size (builder style).
    pub fn beta(mut self, beta: usize) -> Self {
        self.beta = beta;
        self
    }

    /// The *effective* required sources: `C` plus every source implicitly
    /// required by a GA constraint (§2.4: "a GA constraint implicitly
    /// specifies a set of source constraints").
    pub fn effective_required_sources(&self) -> BTreeSet<SourceId> {
        let mut out = self.required_sources.clone();
        for ga in &self.required_gas {
            out.extend(ga.sources());
        }
        out
    }

    /// Validates the constraints against a universe.
    ///
    /// Checks that every referenced source and attribute exists, that `θ` is
    /// in [0, 1], that the effective required sources fit within
    /// `max_sources`, and that no two GA constraints conflict (two GA
    /// constraints that share a source through *different* attributes can
    /// never both be subsumed by a valid mediated schema unless they are
    /// mergeable; sharing an attribute forces them into the same output GA,
    /// which must still be a valid GA).
    pub fn validate(&self, universe: &Universe) -> Result<(), MubeError> {
        if !(0.0..=1.0).contains(&self.theta) {
            return Err(MubeError::InvalidParameter {
                detail: format!("theta must be in [0,1], got {}", self.theta),
            });
        }
        if self.max_sources == 0 {
            return Err(MubeError::InvalidParameter {
                detail: "max_sources must be at least 1".into(),
            });
        }
        for s in &self.required_sources {
            if universe.get(*s).is_none() {
                return Err(MubeError::UnknownSource { source: *s });
            }
        }
        for ga in &self.required_gas {
            for a in ga.attrs() {
                if !universe.contains_attr(*a) {
                    return Err(MubeError::UnknownAttribute {
                        detail: a.to_string(),
                    });
                }
            }
        }
        let required = self.effective_required_sources();
        if required.len() > self.max_sources {
            return Err(MubeError::ConstraintConflict {
                detail: format!(
                    "{} sources are required but max_sources is {}",
                    required.len(),
                    self.max_sources
                ),
            });
        }
        // GA constraints that overlap (share an attribute) must be mergeable
        // into a single valid GA, because the output GAs are disjoint.
        for (i, g1) in self.required_gas.iter().enumerate() {
            for g2 in &self.required_gas[i + 1..] {
                if g1.intersects(g2) && g1.merge(g2).is_none() {
                    return Err(MubeError::ConstraintConflict {
                        detail: format!(
                            "GA constraints overlap but cannot merge into a valid GA: \
                             {:?} and {:?}",
                            g1, g2
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Collapses overlapping GA constraints into merged seed GAs. The
    /// clustering algorithm seeds one cluster per entry of the result.
    ///
    /// Assumes [`Constraints::validate`] passed; conflicting overlaps panic.
    pub fn merged_ga_seeds(&self) -> Vec<GlobalAttribute> {
        let mut seeds: Vec<GlobalAttribute> = Vec::new();
        for ga in &self.required_gas {
            let mut current = ga.clone();
            // Repeatedly absorb any seed that overlaps the growing GA.
            loop {
                let mut absorbed = false;
                seeds.retain(|s| {
                    if current.intersects(s) {
                        current = current
                            .merge(s)
                            .expect("validated GA constraints must be mergeable");
                        absorbed = true;
                        false
                    } else {
                        true
                    }
                });
                if !absorbed {
                    break;
                }
            }
            seeds.push(current);
        }
        seeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AttrId;
    use crate::schema::Schema;
    use crate::source::SourceSpec;

    fn a(s: u32, j: u32) -> AttrId {
        AttrId::new(SourceId(s), j)
    }

    fn small_universe() -> Universe {
        let mut b = Universe::builder();
        for name in ["u", "v", "w"] {
            b.add_source(SourceSpec::new(name, Schema::new(["x", "y", "z"])));
        }
        b.build().unwrap()
    }

    #[test]
    fn defaults_are_papers() {
        let c = Constraints::with_max_sources(20);
        assert_eq!(c.theta, 0.75);
        assert_eq!(c.beta, 2);
        assert_eq!(c.max_sources, 20);
    }

    #[test]
    fn ga_constraints_imply_source_constraints() {
        let ga = GlobalAttribute::try_new([a(0, 0), a(2, 1)]).unwrap();
        let c = Constraints::with_max_sources(5)
            .require_source(SourceId(1))
            .require_ga(ga);
        let eff = c.effective_required_sources();
        assert_eq!(eff, [SourceId(0), SourceId(1), SourceId(2)].into());
    }

    #[test]
    fn validate_catches_unknown_source() {
        let c = Constraints::with_max_sources(5).require_source(SourceId(99));
        assert!(matches!(
            c.validate(&small_universe()),
            Err(MubeError::UnknownSource { .. })
        ));
    }

    #[test]
    fn validate_catches_unknown_attribute() {
        let ga = GlobalAttribute::try_new([a(0, 9)]).unwrap();
        let c = Constraints::with_max_sources(5).require_ga(ga);
        assert!(matches!(
            c.validate(&small_universe()),
            Err(MubeError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn validate_catches_too_many_required() {
        let c = Constraints::with_max_sources(1)
            .require_source(SourceId(0))
            .require_source(SourceId(1));
        assert!(matches!(
            c.validate(&small_universe()),
            Err(MubeError::ConstraintConflict { .. })
        ));
    }

    #[test]
    fn validate_catches_bad_theta() {
        let c = Constraints {
            theta: 1.5,
            ..Constraints::with_max_sources(5)
        };
        assert!(matches!(
            c.validate(&small_universe()),
            Err(MubeError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn validate_catches_conflicting_ga_overlap() {
        // g1 and g2 share a0.0 but bring different attributes of source 1.
        let g1 = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        let g2 = GlobalAttribute::try_new([a(0, 0), a(1, 1)]).unwrap();
        let c = Constraints::with_max_sources(5)
            .require_ga(g1)
            .require_ga(g2);
        assert!(matches!(
            c.validate(&small_universe()),
            Err(MubeError::ConstraintConflict { .. })
        ));
    }

    #[test]
    fn merged_seeds_collapse_overlaps() {
        let g1 = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        let g2 = GlobalAttribute::try_new([a(0, 0), a(2, 0)]).unwrap();
        let g3 = GlobalAttribute::try_new([a(1, 1)]).unwrap();
        let c = Constraints::with_max_sources(5)
            .require_ga(g1)
            .require_ga(g2)
            .require_ga(g3);
        let seeds = c.merged_ga_seeds();
        assert_eq!(seeds.len(), 2);
        let big = seeds.iter().find(|s| s.len() == 3).unwrap();
        assert!(big.contains(a(0, 0)) && big.contains(a(1, 0)) && big.contains(a(2, 0)));
    }

    #[test]
    fn merged_seeds_chain_transitively() {
        // g1 ∩ g2 through a1.0, g2 ∩ g3 through a2.0: all three become one.
        let g1 = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        let g2 = GlobalAttribute::try_new([a(1, 0), a(2, 0)]).unwrap();
        let g3 = GlobalAttribute::try_new([a(2, 0), a(3, 0)]).unwrap();
        let c = Constraints::with_max_sources(9)
            .require_ga(g1)
            .require_ga(g3)
            .require_ga(g2);
        let seeds = c.merged_ga_seeds();
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].len(), 4);
    }
}

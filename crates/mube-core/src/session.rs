//! The iterative user-feedback loop (§6 of the paper).
//!
//! `µBE`'s defining feature is not a single optimization run but the loop
//! around it: the user inspects the chosen sources and mediated schema,
//! pins sources, promotes output GAs into GA constraints, re-weights the
//! quality dimensions, and re-solves. A [`Session`] owns the evolving
//! [`Problem`], runs the solver, and keeps the solution history so each
//! iteration can be diffed against the previous one.
//!
//! By design (and per the paper), the *output* format — GAs — is exactly the
//! *input* constraint format, so [`Session::adopt_ga`] can turn "GA 3 of the
//! last solution" directly into a constraint for the next run.

use mube_opt::SubsetSolver;

use crate::constraints::Constraints;
use crate::error::MubeError;
use crate::ga::GlobalAttribute;
use crate::ids::SourceId;
use crate::problem::Problem;
use crate::solution::{Solution, SolutionDiff};
use crate::source::Universe;
use crate::validate::SolutionValidator;

/// An interactive `µBE` session: a problem, a solver, and the history of
/// solutions across feedback iterations.
pub struct Session {
    problem: Problem,
    solver: Box<dyn SubsetSolver>,
    seed: u64,
    history: Vec<Solution>,
    continuity: bool,
    drift_limit: Option<usize>,
}

impl Session {
    /// Starts a session. `seed` makes the whole session deterministic.
    pub fn new(problem: Problem, solver: Box<dyn SubsetSolver>, seed: u64) -> Self {
        Session {
            problem,
            solver,
            seed,
            history: Vec::new(),
            continuity: false,
            drift_limit: None,
        }
    }

    /// Enables *continuity*: each `run()` after the first warm-starts tabu
    /// search from the previous solution (repaired against the current
    /// constraints) inside a trust region, so small feedback edits produce
    /// small solution diffs — the stability the paper's §7.4 robustness
    /// experiment relies on — at the price of exploring less after each
    /// edit. The drift bound defaults to a third of `m` (at least 2
    /// membership changes, i.e. one swap); override it with
    /// [`Session::with_drift_limit`].
    ///
    /// Only takes effect when the session's solver is
    /// [`mube_opt::TabuSearch`] (the other solvers have no warm-start
    /// notion); otherwise `run()` behaves as without continuity.
    pub fn with_continuity(mut self) -> Self {
        self.continuity = true;
        self
    }

    /// Sets the continuity drift bound: the maximum Hamming distance
    /// (sources added + sources removed) between consecutive solutions when
    /// [`Session::with_continuity`] is enabled.
    pub fn with_drift_limit(mut self, limit: usize) -> Self {
        self.drift_limit = Some(limit);
        self
    }

    /// The underlying universe.
    pub fn universe(&self) -> &Universe {
        self.problem.universe()
    }

    /// The current constraints.
    pub fn constraints(&self) -> &Constraints {
        self.problem.constraints()
    }

    /// The problem (read-only).
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Runs one optimization iteration and records the solution.
    ///
    /// Each iteration uses a fresh solver seed derived from the session seed
    /// and the iteration number, so re-running after feedback explores anew
    /// but the session as a whole stays reproducible.
    pub fn run(&mut self) -> Result<&Solution, MubeError> {
        self.run_cancel(&mube_opt::CancelToken::none())
    }

    /// Like [`Session::run`], bounded by a [`mube_opt::CancelToken`]: when
    /// the token fires mid-solve, the best-so-far incumbent is validated,
    /// recorded, and returned with [`Solution::timed_out`] set.
    pub fn run_cancel(&mut self, cancel: &mube_opt::CancelToken) -> Result<&Solution, MubeError> {
        let seed = self.seed.wrapping_add(self.history.len() as u64);
        let warm = if self.continuity {
            self.history.last().map(|s| s.sources.clone())
        } else {
            None
        };
        let solution = match warm {
            Some(warm) => {
                let radius = self
                    .drift_limit
                    .unwrap_or_else(|| (self.problem.constraints().max_sources / 3).max(2));
                self.problem
                    .solve_near_cancel(self.solver.as_ref(), seed, &warm, radius, cancel)?
            }
            None => self
                .problem
                .solve_cancel(self.solver.as_ref(), seed, cancel)?,
        };
        // Defense-in-depth: independently audit the returned solution
        // against the full constraint set and QEF bounds before recording
        // it, so a solver or objective bug surfaces here instead of as a
        // corrupted session history.
        SolutionValidator::for_problem(&self.problem).validate(&solution)?;
        self.history.push(solution);
        Ok(self.history.last().expect("just pushed"))
    }

    /// Installs a previously computed solution as the next history entry
    /// without re-running the solver.
    ///
    /// This is the replay path for durable session journals: a deadline-cut
    /// solve is *not* reproducible from its seed (wall-clock cancellation is
    /// outside the deterministic state), so recovery replays the recorded
    /// solution itself. The solution is still validated against the current
    /// constraints, and the iteration counter advances exactly as if
    /// [`Session::run`] had produced it — keeping future seed derivation and
    /// continuity warm-starts byte-identical to the uninterrupted session.
    pub fn restore_solution(&mut self, solution: Solution) -> Result<(), MubeError> {
        SolutionValidator::for_problem(&self.problem).validate(&solution)?;
        self.history.push(solution);
        Ok(())
    }

    /// The most recent solution, if any iteration has run.
    pub fn latest(&self) -> Option<&Solution> {
        self.history.last()
    }

    /// All solutions so far, oldest first.
    pub fn history(&self) -> &[Solution] {
        &self.history
    }

    /// Number of iterations run so far.
    pub fn iterations(&self) -> usize {
        self.history.len()
    }

    /// The session seed (iteration seeds derive from it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The solver's name (`"tabu"`, `"sls"`, ...).
    pub fn solver_name(&self) -> &str {
        self.solver.name()
    }

    /// Diff of the last two iterations (what the latest feedback changed).
    pub fn last_diff(&self) -> Option<SolutionDiff> {
        let n = self.history.len();
        if n < 2 {
            return None;
        }
        Some(self.history[n - 2].diff(&self.history[n - 1]))
    }

    // ------------------------------------------------------------------
    // Feedback verbs. Each edits the constraints or weights and leaves the
    // session ready for the next `run()`.
    // ------------------------------------------------------------------

    /// Pins a source: it must appear in every future solution.
    pub fn pin_source(&mut self, source: SourceId) -> Result<(), MubeError> {
        let mut c = self.problem.constraints().clone();
        c.required_sources.insert(source);
        self.problem.set_constraints(c)
    }

    /// Pins a source by name.
    pub fn pin_source_by_name(&mut self, name: &str) -> Result<(), MubeError> {
        let id = self
            .universe()
            .source_by_name(name)
            .map(super::source::Source::id)
            .ok_or_else(|| MubeError::UnknownAttribute {
                detail: format!("source `{name}`"),
            })?;
        self.pin_source(id)
    }

    /// Un-pins a source.
    pub fn unpin_source(&mut self, source: SourceId) -> Result<(), MubeError> {
        let mut c = self.problem.constraints().clone();
        c.required_sources.remove(&source);
        self.problem.set_constraints(c)
    }

    /// Un-pins a source by name.
    pub fn unpin_source_by_name(&mut self, name: &str) -> Result<(), MubeError> {
        let id = self
            .universe()
            .source_by_name(name)
            .map(super::source::Source::id)
            .ok_or_else(|| MubeError::UnknownAttribute {
                detail: format!("source `{name}`"),
            })?;
        self.unpin_source(id)
    }

    /// Adds a GA constraint ("matching by example"): the output schema must
    /// contain a GA subsuming `ga`.
    pub fn require_ga(&mut self, ga: GlobalAttribute) -> Result<(), MubeError> {
        let mut c = self.problem.constraints().clone();
        c.required_gas.push(ga);
        self.problem.set_constraints(c)
    }

    /// Promotes GA `index` of the latest solution into a GA constraint —
    /// the paper's signature "modify the output to get the next input".
    ///
    /// A stale index (out of range for the latest solution, or no solution
    /// yet) is a structured [`MubeError::StaleGaIndex`], so interactive
    /// front ends can tell the user the valid range.
    pub fn adopt_ga(&mut self, index: usize) -> Result<(), MubeError> {
        let available = self.latest().map_or(0, |s| s.schema.len());
        let ga = self
            .latest()
            .and_then(|s| s.ga(index))
            .cloned()
            .ok_or(MubeError::StaleGaIndex { index, available })?;
        self.require_ga(ga)
    }

    /// Builds a GA constraint from `(source name, attribute name)` pairs and
    /// adds it. This is the "bridge two attributes the matcher can't see as
    /// similar" gesture from §3 (F name ↔ Prenom).
    pub fn require_ga_by_names(&mut self, pairs: &[(&str, &str)]) -> Result<(), MubeError> {
        let mut attrs = Vec::with_capacity(pairs.len());
        for (source_name, attr_name) in pairs {
            let source = self.universe().source_by_name(source_name).ok_or_else(|| {
                MubeError::UnknownAttribute {
                    detail: format!("source `{source_name}`"),
                }
            })?;
            let idx = source
                .schema()
                .iter()
                .find(|(_, a)| a.name() == attr_name.to_lowercase())
                .map(|(j, _)| j as u32)
                .ok_or_else(|| MubeError::UnknownAttribute {
                    detail: format!("attribute `{attr_name}` of `{source_name}`"),
                })?;
            attrs.push(crate::ids::AttrId::new(source.id(), idx));
        }
        let ga = GlobalAttribute::try_new(attrs)?;
        self.require_ga(ga)
    }

    /// Removes all GA constraints.
    pub fn clear_ga_constraints(&mut self) -> Result<(), MubeError> {
        let mut c = self.problem.constraints().clone();
        c.required_gas.clear();
        self.problem.set_constraints(c)
    }

    /// Sets one QEF's weight, rescaling the others proportionally.
    pub fn set_weight(&mut self, qef: &str, weight: f64) -> Result<(), MubeError> {
        let qefs = self.problem.qefs().reweighted(qef, weight)?;
        self.problem.set_qefs(qefs);
        Ok(())
    }

    /// Replaces all weights (same order as the QEFs were registered).
    pub fn set_weights(&mut self, weights: &[f64]) -> Result<(), MubeError> {
        let qefs = self.problem.qefs().with_weights(weights)?;
        self.problem.set_qefs(qefs);
        Ok(())
    }

    /// Sets the matching threshold `θ`.
    pub fn set_theta(&mut self, theta: f64) -> Result<(), MubeError> {
        let mut c = self.problem.constraints().clone();
        c.theta = theta;
        self.problem.set_constraints(c)
    }

    /// Sets the minimum GA size `β`.
    pub fn set_beta(&mut self, beta: usize) -> Result<(), MubeError> {
        let mut c = self.problem.constraints().clone();
        c.beta = beta;
        self.problem.set_constraints(c)
    }

    /// Sets the maximum number of sources `m`.
    pub fn set_max_sources(&mut self, m: usize) -> Result<(), MubeError> {
        let mut c = self.problem.constraints().clone();
        c.max_sources = m;
        self.problem.set_constraints(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::Constraints;
    use crate::matchop::IdentityMatcher;
    use crate::qefs::data_only_qefs;
    use crate::schema::Schema;
    use crate::source::SourceSpec;
    use mube_opt::TabuSearch;
    use std::sync::Arc;

    fn session(n: u32, m: usize) -> Session {
        let mut b = Universe::builder();
        for i in 0..n {
            b.add_source(
                SourceSpec::new(format!("src{i}"), Schema::new(["title", "author"]))
                    .cardinality(100 + u64::from(i)),
            );
        }
        let universe = Arc::new(b.build().unwrap());
        let problem = Problem::new(
            universe,
            Arc::new(IdentityMatcher),
            data_only_qefs(),
            Constraints::with_max_sources(m).beta(1),
        )
        .unwrap();
        Session::new(problem, Box::new(TabuSearch::default()), 7)
    }

    #[test]
    fn run_records_history() {
        let mut s = session(6, 3);
        assert!(s.latest().is_none());
        s.run().unwrap();
        s.run().unwrap();
        assert_eq!(s.history().len(), 2);
        assert!(s.last_diff().is_some());
    }

    #[test]
    fn pin_source_takes_effect() {
        let mut s = session(6, 2);
        s.pin_source(SourceId(5)).unwrap();
        let sol = s.run().unwrap();
        assert!(sol.sources.contains(&SourceId(5)));
    }

    #[test]
    fn pin_by_name_and_unpin() {
        let mut s = session(4, 2);
        s.pin_source_by_name("src2").unwrap();
        assert!(s.constraints().required_sources.contains(&SourceId(2)));
        s.unpin_source(SourceId(2)).unwrap();
        assert!(s.constraints().required_sources.is_empty());
        assert!(s.pin_source_by_name("nope").is_err());
    }

    #[test]
    fn adopt_ga_promotes_output() {
        let mut s = session(4, 3);
        s.run().unwrap();
        let before = s.constraints().required_gas.len();
        s.adopt_ga(0).unwrap();
        assert_eq!(s.constraints().required_gas.len(), before + 1);
        // The adopted GA must keep appearing.
        let adopted = s.constraints().required_gas[0].clone();
        let sol = s.run().unwrap();
        assert!(sol.schema.covers_gas(&[adopted]));
    }

    #[test]
    fn adopt_ga_out_of_range_errors() {
        let mut s = session(3, 2);
        // Before any run, the stale error reports zero available GAs.
        assert_eq!(
            s.adopt_ga(0),
            Err(MubeError::StaleGaIndex {
                index: 0,
                available: 0
            })
        );
        s.run().unwrap();
        let n = s.latest().unwrap().schema.len();
        assert_eq!(
            s.adopt_ga(999),
            Err(MubeError::StaleGaIndex {
                index: 999,
                available: n
            })
        );
    }

    #[test]
    fn session_accessors() {
        let mut s = session(4, 2);
        assert_eq!(s.iterations(), 0);
        assert_eq!(s.seed(), 7);
        assert_eq!(s.solver_name(), "tabu");
        s.run().unwrap();
        assert_eq!(s.iterations(), 1);
        s.pin_source_by_name("src1").unwrap();
        s.unpin_source_by_name("src1").unwrap();
        assert!(s.constraints().required_sources.is_empty());
        assert!(s.unpin_source_by_name("ghost").is_err());
    }

    #[test]
    fn sessions_are_send() {
        // The server moves sessions across worker threads; a regression
        // here (a non-Send solver or matcher sneaking into the object
        // graph) must fail to compile.
        fn assert_send<T: Send>() {}
        assert_send::<Session>();
    }

    #[test]
    fn require_ga_by_names_resolves() {
        let mut s = session(3, 3);
        s.require_ga_by_names(&[("src0", "title"), ("src1", "Author")])
            .unwrap();
        assert_eq!(s.constraints().required_gas.len(), 1);
        assert!(s.require_ga_by_names(&[("src0", "missing")]).is_err());
        assert!(s.require_ga_by_names(&[("ghost", "title")]).is_err());
    }

    #[test]
    fn weight_feedback() {
        let mut s = session(3, 2);
        s.set_weight("cardinality", 0.7).unwrap();
        assert!((s.problem().qefs().weight_of("cardinality").unwrap() - 0.7).abs() < 1e-9);
        assert!(s.set_weight("ghost", 0.5).is_err());
    }

    #[test]
    fn parameter_setters() {
        let mut s = session(3, 2);
        s.set_theta(0.5).unwrap();
        s.set_beta(3).unwrap();
        s.set_max_sources(3).unwrap();
        assert_eq!(s.constraints().theta, 0.5);
        assert_eq!(s.constraints().beta, 3);
        assert_eq!(s.constraints().max_sources, 3);
        assert!(s.set_theta(2.0).is_err());
    }

    #[test]
    fn session_is_reproducible() {
        let run = |seed| {
            let mut b = Universe::builder();
            for i in 0..8u32 {
                b.add_source(
                    SourceSpec::new(format!("s{i}"), Schema::new(["x"]))
                        .cardinality(u64::from(i * i)),
                );
            }
            let problem = Problem::new(
                Arc::new(b.build().unwrap()),
                Arc::new(IdentityMatcher),
                data_only_qefs(),
                Constraints::with_max_sources(3).beta(1),
            )
            .unwrap();
            let mut s = Session::new(problem, Box::new(TabuSearch::default()), seed);
            s.run().unwrap().clone()
        };
        assert_eq!(run(5).sources, run(5).sources);
    }
}

//! Global Attributes and mediated schemas (Definitions 1–3 of the paper).
//!
//! A *Global Attribute* (GA) is a set of attributes, drawn from different
//! sources, that all express the same concept; a *mediated schema* is a set of
//! pairwise-disjoint GAs spanning the selected sources. GAs are deliberately
//! unnamed: the GA *is* the matching, and giving the user GAs (rather than
//! named mediated attributes) is what makes `µBE`'s output directly reusable as
//! the constraint input of the next iteration.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::MubeError;
use crate::ids::{AttrId, SourceId};
use crate::source::Universe;

/// A Global Attribute: a non-empty set of attributes from *distinct* sources
/// (Definition 1). Validity is enforced at construction, so a value of this
/// type is always a valid GA.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalAttribute {
    attrs: BTreeSet<AttrId>,
}

impl GlobalAttribute {
    /// Builds a GA, checking Definition 1: non-empty, and no two attributes
    /// from the same source.
    pub fn try_new<I: IntoIterator<Item = AttrId>>(attrs: I) -> Result<Self, MubeError> {
        let attrs: BTreeSet<AttrId> = attrs.into_iter().collect();
        if attrs.is_empty() {
            return Err(MubeError::EmptyGa);
        }
        let mut sources = BTreeSet::new();
        for a in &attrs {
            if !sources.insert(a.source) {
                return Err(MubeError::GaSourceConflict { source: a.source });
            }
        }
        Ok(GlobalAttribute { attrs })
    }

    /// A GA holding a single attribute.
    pub fn singleton(attr: AttrId) -> Self {
        let mut attrs = BTreeSet::new();
        attrs.insert(attr);
        GlobalAttribute { attrs }
    }

    /// The attributes in this GA.
    pub fn attrs(&self) -> &BTreeSet<AttrId> {
        &self.attrs
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// GAs are non-empty by construction; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if the GA contains the given attribute.
    pub fn contains(&self, attr: AttrId) -> bool {
        self.attrs.contains(&attr)
    }

    /// The sources this GA draws attributes from. Exactly one attribute per
    /// source by Definition 1.
    pub fn sources(&self) -> impl Iterator<Item = SourceId> + '_ {
        self.attrs.iter().map(|a| a.source)
    }

    /// True if this GA has an attribute from `source`.
    pub fn touches_source(&self, source: SourceId) -> bool {
        // attrs are ordered by (source, index); range query would work, but
        // GAs are small so a scan is fine.
        self.attrs.iter().any(|a| a.source == source)
    }

    /// Set-containment: every attribute of `self` is in `other`.
    pub fn is_subset_of(&self, other: &GlobalAttribute) -> bool {
        self.attrs.is_subset(&other.attrs)
    }

    /// True if the two GAs share any attribute.
    pub fn intersects(&self, other: &GlobalAttribute) -> bool {
        // Iterate the smaller one.
        let (small, big) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.attrs.iter().any(|a| big.attrs.contains(a))
    }

    /// Merges two GAs if the union is still a valid GA (no source appears
    /// twice); returns `None` otherwise. This is the merge step of the
    /// clustering algorithm.
    pub fn merge(&self, other: &GlobalAttribute) -> Option<GlobalAttribute> {
        let mut sources: BTreeSet<SourceId> = self.sources().collect();
        for a in &other.attrs {
            // Shared attributes are fine (same source *and* same index);
            // distinct attributes from a shared source are not.
            if !sources.insert(a.source) && !self.attrs.contains(a) {
                return None;
            }
        }
        let attrs = self.attrs.union(&other.attrs).copied().collect();
        Some(GlobalAttribute { attrs })
    }

    /// Renders the GA with resolved attribute names, e.g.
    /// `{s0.title, s3.book title}`.
    pub fn display<'a>(&'a self, universe: &'a Universe) -> GaDisplay<'a> {
        GaDisplay { ga: self, universe }
    }
}

/// Helper returned by [`GlobalAttribute::display`].
pub struct GaDisplay<'a> {
    ga: &'a GlobalAttribute,
    universe: &'a Universe,
}

impl fmt::Display for GaDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.ga.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let name = self.universe.attr_name(*a).unwrap_or("?");
            write!(
                f,
                "{}:{}",
                self.universe
                    .get(a.source)
                    .map_or("?", super::source::Source::name),
                name
            )?;
        }
        write!(f, "}}")
    }
}

/// A mediated schema: a set of GAs (Definition 2).
///
/// Unlike [`GlobalAttribute`], a `MediatedSchema` is not validity-checked at
/// construction, because validity is relative to a *set of sources*; use
/// [`MediatedSchema::is_valid_on`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MediatedSchema {
    gas: Vec<GlobalAttribute>,
}

impl MediatedSchema {
    /// Builds a mediated schema from GAs.
    pub fn new<I: IntoIterator<Item = GlobalAttribute>>(gas: I) -> Self {
        MediatedSchema {
            gas: gas.into_iter().collect(),
        }
    }

    /// The empty schema.
    pub fn empty() -> Self {
        MediatedSchema::default()
    }

    /// The GAs.
    pub fn gas(&self) -> &[GlobalAttribute] {
        &self.gas
    }

    /// Number of GAs.
    pub fn len(&self) -> usize {
        self.gas.len()
    }

    /// True if there are no GAs.
    pub fn is_empty(&self) -> bool {
        self.gas.is_empty()
    }

    /// True if no attribute appears in two GAs.
    pub fn gas_disjoint(&self) -> bool {
        let mut seen = BTreeSet::new();
        for ga in &self.gas {
            for a in ga.attrs() {
                if !seen.insert(*a) {
                    return false;
                }
            }
        }
        true
    }

    /// The set of sources that have at least one attribute in some GA.
    pub fn sources_spanned(&self) -> BTreeSet<SourceId> {
        let mut out = BTreeSet::new();
        for ga in &self.gas {
            out.extend(ga.sources());
        }
        out
    }

    /// Definition 2: the schema is valid on a set of sources iff the GAs are
    /// pairwise disjoint and every source in the set is touched by some GA.
    pub fn is_valid_on(&self, sources: &BTreeSet<SourceId>) -> bool {
        if !self.gas_disjoint() {
            return false;
        }
        let spanned = self.sources_spanned();
        sources.iter().all(|s| spanned.contains(s))
    }

    /// Definition 3: `self` subsumes `other` iff every GA of `other` is
    /// contained in some GA of `self`.
    pub fn subsumes(&self, other: &MediatedSchema) -> bool {
        other
            .gas
            .iter()
            .all(|g2| self.gas.iter().any(|g1| g2.is_subset_of(g1)))
    }

    /// True if every GA in `gas` is contained in some GA of this schema —
    /// the `G ⊑ M` check for GA constraints.
    pub fn covers_gas(&self, gas: &[GlobalAttribute]) -> bool {
        gas.iter()
            .all(|g2| self.gas.iter().any(|g1| g2.is_subset_of(g1)))
    }

    /// The GA containing a given attribute, if any.
    pub fn ga_of(&self, attr: AttrId) -> Option<&GlobalAttribute> {
        self.gas.iter().find(|g| g.contains(attr))
    }

    /// Keeps only GAs satisfying the predicate.
    pub fn retain<F: FnMut(&GlobalAttribute) -> bool>(&mut self, f: F) {
        self.gas.retain(f);
    }

    /// Renders with resolved names; one GA per line.
    pub fn display<'a>(&'a self, universe: &'a Universe) -> SchemaDisplay<'a> {
        SchemaDisplay {
            schema: self,
            universe,
        }
    }

    /// Counts how many GAs of `self` are absent (as a subset of some GA) from
    /// `other` — a useful measure of how much a solution changed between
    /// session iterations.
    pub fn gas_not_in(&self, other: &MediatedSchema) -> usize {
        self.gas
            .iter()
            .filter(|g| !other.gas.iter().any(|o| g.is_subset_of(o)))
            .count()
    }
}

/// Helper returned by [`MediatedSchema::display`].
pub struct SchemaDisplay<'a> {
    schema: &'a MediatedSchema,
    universe: &'a Universe,
}

impl fmt::Display for SchemaDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ga) in self.schema.gas.iter().enumerate() {
            writeln!(f, "  GA{}: {}", i, ga.display(self.universe))?;
        }
        Ok(())
    }
}

/// Groups the attributes of a mediated schema by source — handy for
/// rendering the "mapping" view (which local attribute maps to which GA).
pub fn mapping_by_source(schema: &MediatedSchema) -> BTreeMap<SourceId, Vec<(AttrId, usize)>> {
    let mut out: BTreeMap<SourceId, Vec<(AttrId, usize)>> = BTreeMap::new();
    for (gi, ga) in schema.gas().iter().enumerate() {
        for a in ga.attrs() {
            out.entry(a.source).or_default().push((*a, gi));
        }
    }
    for v in out.values_mut() {
        v.sort();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: u32, j: u32) -> AttrId {
        AttrId::new(SourceId(s), j)
    }

    #[test]
    fn ga_rejects_empty() {
        assert!(matches!(
            GlobalAttribute::try_new([]),
            Err(MubeError::EmptyGa)
        ));
    }

    #[test]
    fn ga_rejects_same_source_twice() {
        let err = GlobalAttribute::try_new([a(1, 0), a(1, 1)]);
        assert!(matches!(err, Err(MubeError::GaSourceConflict { .. })));
    }

    #[test]
    fn ga_accepts_distinct_sources() {
        let ga = GlobalAttribute::try_new([a(0, 0), a(1, 3), a(2, 1)]).unwrap();
        assert_eq!(ga.len(), 3);
        assert!(ga.contains(a(1, 3)));
        assert!(!ga.contains(a(1, 2)));
    }

    #[test]
    fn merge_valid_and_invalid() {
        let g1 = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        let g2 = GlobalAttribute::try_new([a(2, 0)]).unwrap();
        let merged = g1.merge(&g2).unwrap();
        assert_eq!(merged.len(), 3);

        // Conflict: source 1 already present with a different attribute.
        let g3 = GlobalAttribute::try_new([a(1, 1)]).unwrap();
        assert!(g1.merge(&g3).is_none());

        // Sharing the exact same attribute is allowed.
        let g4 = GlobalAttribute::try_new([a(1, 0), a(3, 0)]).unwrap();
        let merged2 = g1.merge(&g4).unwrap();
        assert_eq!(merged2.len(), 3); // {a0.0, a1.0, a3.0}
    }

    #[test]
    fn merge_is_commutative() {
        let g1 = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        let g2 = GlobalAttribute::try_new([a(2, 0), a(3, 1)]).unwrap();
        assert_eq!(g1.merge(&g2), g2.merge(&g1));
    }

    #[test]
    fn schema_validity() {
        let g1 = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        let g2 = GlobalAttribute::try_new([a(0, 1), a(2, 0)]).unwrap();
        let m = MediatedSchema::new([g1.clone(), g2.clone()]);
        let s012: BTreeSet<_> = [SourceId(0), SourceId(1), SourceId(2)].into();
        assert!(m.is_valid_on(&s012));

        // Source 3 is not spanned.
        let s3: BTreeSet<_> = [SourceId(3)].into();
        assert!(!m.is_valid_on(&s3));

        // Overlapping GAs are invalid.
        let overlapping = MediatedSchema::new([
            g1.clone(),
            GlobalAttribute::try_new([a(0, 0), a(2, 0)]).unwrap(),
        ]);
        assert!(!overlapping.is_valid_on(&s012));
    }

    #[test]
    fn subsumption() {
        let small = MediatedSchema::new([GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap()]);
        let big = MediatedSchema::new([
            GlobalAttribute::try_new([a(0, 0), a(1, 0), a(2, 0)]).unwrap(),
            GlobalAttribute::try_new([a(3, 0)]).unwrap(),
        ]);
        assert!(big.subsumes(&small));
        assert!(!small.subsumes(&big));
        // Subsumption is reflexive.
        assert!(big.subsumes(&big));
        // Everything subsumes the empty schema.
        assert!(small.subsumes(&MediatedSchema::empty()));
    }

    #[test]
    fn ga_of_and_mapping() {
        let g1 = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        let g2 = GlobalAttribute::try_new([a(1, 1)]).unwrap();
        let m = MediatedSchema::new([g1, g2]);
        assert!(m.ga_of(a(1, 1)).is_some());
        assert!(m.ga_of(a(2, 0)).is_none());
        let map = mapping_by_source(&m);
        assert_eq!(map[&SourceId(1)].len(), 2);
        assert_eq!(map[&SourceId(0)], vec![(a(0, 0), 0)]);
    }

    #[test]
    fn gas_not_in_counts_changes() {
        let g1 = GlobalAttribute::try_new([a(0, 0), a(1, 0)]).unwrap();
        let g2 = GlobalAttribute::try_new([a(2, 0), a(3, 0)]).unwrap();
        let m1 = MediatedSchema::new([g1.clone(), g2.clone()]);
        let m2 = MediatedSchema::new([g1]);
        assert_eq!(m1.gas_not_in(&m2), 1);
        assert_eq!(m2.gas_not_in(&m1), 0);
    }
}

//! Pairwise overlap diagnostics.
//!
//! The redundancy QEF scores a selection as a whole; when the user asks
//! *which* sources duplicate each other (to decide what to drop or pin),
//! per-pair numbers are needed. PCSA signatures support them directly
//! through inclusion–exclusion: `|A∩B| = |A| + |B| − |A∪B|`, with every
//! term estimable from the cached signatures — still without touching any
//! tuples.

use std::collections::BTreeSet;
use std::fmt;

use crate::ids::SourceId;
use crate::source::Universe;

/// Pairwise overlap estimates for a set of sources.
#[derive(Debug, Clone)]
pub struct OverlapMatrix {
    sources: Vec<SourceId>,
    /// `fractions[i][j]` ≈ |`s_i` ∩ `s_j`| / `min(|s_i`|, |`s_j`|), in [0, 1].
    fractions: Vec<Vec<f64>>,
}

/// Estimates the pairwise overlap of the cooperating sources in the
/// selection. Sources without signatures are skipped.
pub fn overlap_matrix(universe: &Universe, sources: &BTreeSet<SourceId>) -> OverlapMatrix {
    let cooperating: Vec<SourceId> = sources
        .iter()
        .copied()
        .filter(|&s| universe.source(s).cooperates())
        .collect();
    let estimates: Vec<f64> = cooperating
        .iter()
        .map(|&s| universe.source(s).signature().expect("filtered").estimate())
        .collect();
    let n = cooperating.len();
    let mut fractions = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        fractions[i][i] = 1.0;
        for j in (i + 1)..n {
            let a = universe
                .source(cooperating[i])
                .signature()
                .expect("filtered");
            let b = universe
                .source(cooperating[j])
                .signature()
                .expect("filtered");
            let union = a
                .union(b)
                .expect("universe signatures share configs")
                .estimate();
            // Inclusion–exclusion; PCSA noise can push the estimate
            // slightly negative, so clamp.
            let intersection = (estimates[i] + estimates[j] - union).max(0.0);
            let denom = estimates[i].min(estimates[j]).max(1.0);
            let frac = (intersection / denom).clamp(0.0, 1.0);
            fractions[i][j] = frac;
            fractions[j][i] = frac;
        }
    }
    OverlapMatrix {
        sources: cooperating,
        fractions,
    }
}

impl OverlapMatrix {
    /// The sources covered, in matrix order.
    pub fn sources(&self) -> &[SourceId] {
        &self.sources
    }

    /// Estimated `|a ∩ b| / min(|a|, |b|)`, or `None` if either source is
    /// not in the matrix.
    pub fn fraction(&self, a: SourceId, b: SourceId) -> Option<f64> {
        let i = self.sources.iter().position(|&s| s == a)?;
        let j = self.sources.iter().position(|&s| s == b)?;
        Some(self.fractions[i][j])
    }

    /// Pairs whose overlap fraction is at least `threshold`, sorted most
    /// overlapping first — the "consider dropping one of these" shortlist.
    pub fn heavy_pairs(&self, threshold: f64) -> Vec<(SourceId, SourceId, f64)> {
        let mut out = Vec::new();
        for i in 0..self.sources.len() {
            for j in (i + 1)..self.sources.len() {
                if self.fractions[i][j] >= threshold {
                    out.push((self.sources[i], self.sources[j], self.fractions[i][j]));
                }
            }
        }
        out.sort_by(|a, b| b.2.total_cmp(&a.2));
        out
    }

    /// Renders with resolved source names.
    pub fn display<'a>(&'a self, universe: &'a Universe) -> OverlapDisplay<'a> {
        OverlapDisplay {
            matrix: self,
            universe,
        }
    }
}

/// Helper returned by [`OverlapMatrix::display`].
pub struct OverlapDisplay<'a> {
    matrix: &'a OverlapMatrix,
    universe: &'a Universe,
}

impl fmt::Display for OverlapDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (a, b, frac) in self.matrix.heavy_pairs(0.0) {
            writeln!(
                f,
                "  {} ∩ {} ≈ {:.0}%",
                self.universe.source(a).name(),
                self.universe.source(b).name(),
                frac * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::source::SourceSpec;
    use mube_sketch::pcsa::{PcsaConfig, PcsaSignature};

    fn sig(keys: std::ops::Range<u64>) -> PcsaSignature {
        let mut s = PcsaSignature::new(PcsaConfig::new(256, 32, 7));
        for k in keys {
            s.insert(k);
        }
        s
    }

    fn universe() -> Universe {
        let mut b = Universe::builder();
        b.add_source(
            SourceSpec::new("a", Schema::new(["x"]))
                .cardinality(20_000)
                .signature(sig(0..20_000)),
        );
        b.add_source(
            SourceSpec::new("half", Schema::new(["y"]))
                .cardinality(20_000)
                .signature(sig(10_000..30_000)),
        );
        b.add_source(
            SourceSpec::new("disjoint", Schema::new(["z"]))
                .cardinality(20_000)
                .signature(sig(50_000..70_000)),
        );
        b.add_source(SourceSpec::new("shy", Schema::new(["w"])).cardinality(9));
        b.build().unwrap()
    }

    #[test]
    fn estimates_track_true_overlap() {
        let u = universe();
        let sources: BTreeSet<_> = u.source_ids().collect();
        let m = overlap_matrix(&u, &sources);
        // a ∩ half = 10k of 20k = 50%; tolerate PCSA noise.
        let ah = m.fraction(SourceId(0), SourceId(1)).unwrap();
        assert!((ah - 0.5).abs() < 0.2, "a∩half = {ah}");
        // a ∩ disjoint ≈ 0.
        let ad = m.fraction(SourceId(0), SourceId(2)).unwrap();
        assert!(ad < 0.2, "a∩disjoint = {ad}");
        // Diagonal is exactly 1.
        assert_eq!(m.fraction(SourceId(0), SourceId(0)), Some(1.0));
    }

    #[test]
    fn uncooperative_sources_are_skipped() {
        let u = universe();
        let sources: BTreeSet<_> = u.source_ids().collect();
        let m = overlap_matrix(&u, &sources);
        assert_eq!(m.sources().len(), 3);
        assert!(m.fraction(SourceId(3), SourceId(0)).is_none());
    }

    #[test]
    fn heavy_pairs_sorted_and_thresholded() {
        let u = universe();
        let sources: BTreeSet<_> = u.source_ids().collect();
        let m = overlap_matrix(&u, &sources);
        let heavy = m.heavy_pairs(0.3);
        assert_eq!(heavy.len(), 1);
        assert_eq!((heavy[0].0, heavy[0].1), (SourceId(0), SourceId(1)));
        let all = m.heavy_pairs(0.0);
        assert_eq!(all.len(), 3);
        assert!(
            all.windows(2).all(|w| w[0].2 >= w[1].2),
            "sorted descending"
        );
    }

    #[test]
    fn display_renders_names() {
        let u = universe();
        let sources: BTreeSet<_> = [SourceId(0), SourceId(1)].into();
        let text = overlap_matrix(&u, &sources).display(&u).to_string();
        assert!(text.contains("a ∩ half"));
    }

    #[test]
    fn symmetric() {
        let u = universe();
        let sources: BTreeSet<_> = u.source_ids().collect();
        let m = overlap_matrix(&u, &sources);
        assert_eq!(
            m.fraction(SourceId(0), SourceId(1)),
            m.fraction(SourceId(1), SourceId(0))
        );
    }
}

//! The schema-matching operator abstraction.
//!
//! §3 of the paper: "Match(S) determines the best matching between the
//! schemas of the data sources in S, and returns this matching along with a
//! measure of its quality". `µBE` is explicitly matcher-agnostic — any
//! algorithm that can enumerate pairs of schema elements and score their
//! similarity can drive it — so the core crate only defines the operator
//! trait. The reference implementation (greedy constrained similarity
//! clustering, Algorithm 1) lives in the `mube-match` crate.

use std::collections::BTreeSet;

use crate::constraints::Constraints;
use crate::ga::MediatedSchema;
use crate::ids::SourceId;
use crate::source::Universe;

/// Result of running the matching operator on a candidate source set.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchOutcome {
    /// A mediated schema satisfying the source and GA constraints was found.
    Matched {
        /// The generated mediated schema `M` (including singleton clusters;
        /// β-filtering is the caller's job since β only applies to `M − G`).
        schema: MediatedSchema,
        /// `F_1`: average over the GAs of the best intra-GA similarity.
        quality: f64,
    },
    /// No matching satisfies both the threshold and the source constraints
    /// on this set of sources (the algorithm "returns a null schema and 0
    /// matching quality").
    Infeasible,
}

/// The `Match(S)` operator.
pub trait MatchOperator: Send + Sync {
    /// Matches the schemas of `sources`, honouring the GA constraints in
    /// `constraints` (seed clusters) and checking validity on the source
    /// constraints.
    ///
    /// Implementations must guarantee, when returning
    /// [`MatchOutcome::Matched`]:
    /// * the schema's GAs are pairwise disjoint and each GA is valid,
    /// * the schema spans every source in `sources`,
    /// * every GA constraint is contained in some output GA (`G ⊑ M`),
    /// * every GA not grown from a GA constraint has internal matching
    ///   quality ≥ `constraints.theta`.
    fn match_sources(
        &self,
        universe: &Universe,
        sources: &BTreeSet<SourceId>,
        constraints: &Constraints,
    ) -> MatchOutcome;
}

/// A trivial matcher that puts every attribute in its own singleton GA and
/// reports quality 1. Useful for tests of the surrounding machinery and as a
/// degenerate baseline ("no mediation").
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityMatcher;

impl MatchOperator for IdentityMatcher {
    fn match_sources(
        &self,
        universe: &Universe,
        sources: &BTreeSet<SourceId>,
        constraints: &Constraints,
    ) -> MatchOutcome {
        use crate::ga::GlobalAttribute;
        let mut gas: Vec<GlobalAttribute> = constraints.merged_ga_seeds();
        let seeded: BTreeSet<_> = gas.iter().flat_map(|g| g.attrs().iter().copied()).collect();
        for &sid in sources {
            let Some(source) = universe.get(sid) else {
                return MatchOutcome::Infeasible;
            };
            for attr in source.attr_ids() {
                if !seeded.contains(&attr) {
                    gas.push(GlobalAttribute::singleton(attr));
                }
            }
        }
        let schema = MediatedSchema::new(gas);
        if !constraints
            .required_sources
            .iter()
            .all(|s| sources.contains(s))
        {
            return MatchOutcome::Infeasible;
        }
        MatchOutcome::Matched {
            schema,
            quality: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::GlobalAttribute;
    use crate::ids::AttrId;
    use crate::schema::Schema;
    use crate::source::SourceSpec;

    fn universe() -> Universe {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("a", Schema::new(["x", "y"])));
        b.add_source(SourceSpec::new("b", Schema::new(["z"])));
        b.build().unwrap()
    }

    #[test]
    fn identity_matcher_singletons() {
        let u = universe();
        let sources: BTreeSet<_> = u.source_ids().collect();
        let c = Constraints::with_max_sources(2);
        match IdentityMatcher.match_sources(&u, &sources, &c) {
            MatchOutcome::Matched { schema, quality } => {
                assert_eq!(schema.len(), 3);
                assert_eq!(quality, 1.0);
                assert!(schema.is_valid_on(&sources));
            }
            MatchOutcome::Infeasible => panic!("expected a match"),
        }
    }

    #[test]
    fn identity_matcher_seeds_ga_constraints() {
        let u = universe();
        let sources: BTreeSet<_> = u.source_ids().collect();
        let ga =
            GlobalAttribute::try_new([AttrId::new(SourceId(0), 0), AttrId::new(SourceId(1), 0)])
                .unwrap();
        let c = Constraints::with_max_sources(2).require_ga(ga.clone());
        match IdentityMatcher.match_sources(&u, &sources, &c) {
            MatchOutcome::Matched { schema, .. } => {
                // x+z merged by constraint, y singleton.
                assert_eq!(schema.len(), 2);
                assert!(schema.covers_gas(&[ga]));
            }
            MatchOutcome::Infeasible => panic!("expected a match"),
        }
    }

    #[test]
    fn identity_matcher_checks_source_constraints() {
        let u = universe();
        let only_a: BTreeSet<_> = [SourceId(0)].into();
        let c = Constraints::with_max_sources(2).require_source(SourceId(1));
        assert_eq!(
            IdentityMatcher.match_sources(&u, &only_a, &c),
            MatchOutcome::Infeasible
        );
    }
}

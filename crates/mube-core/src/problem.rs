//! The constrained optimization problem `µBE` solves (§2.5).
//!
//! Given the universe `U`, the weighted QEFs `F`/`W`, and the constraints
//! `(C, G, m, θ, β)`, find `arg max_{S⊆U} Q(S) = Σ w_i F_i(S)` subject to
//! `|S| ≤ m`, `C ⊆ S`, `G ⊑ M`, and the per-GA quality and size bounds.
//!
//! A [`Problem`] is the bridge between the `µBE` data model and the generic
//! subset-selection solvers of `mube-opt`: it implements
//! [`mube_opt::SubsetObjective`], scoring a candidate source set by running
//! the matching operator, filtering the mediated schema through the `β`
//! bound, evaluating the QEFs, and caching the resulting objective value so
//! the optimizer's revisits are free.

use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use mube_opt::{SolveResult, SubsetObjective, SubsetSolver};

use crate::constraints::Constraints;
use crate::error::MubeError;
use crate::ga::MediatedSchema;
use crate::ids::SourceId;
use crate::matchop::{MatchOperator, MatchOutcome};
use crate::qef::{EvalContext, EvalInput, WeightedQefs};
use crate::solution::Solution;
use crate::source::Universe;

/// Objective value assigned to candidates whose matching is infeasible
/// (null schema, violated source constraints, or β filtering orphaning a
/// constraint source). Any feasible candidate scores in `[0, 1]`, so
/// feasible always beats infeasible.
pub const INFEASIBLE_SCORE: f64 = -1.0;

/// Number of lock shards in a [`ShardedCache`]. A small power of two keeps
/// the memory overhead negligible while spreading a portfolio's worker
/// threads across independent locks.
const CACHE_SHARDS: usize = 16;

/// A candidate-keyed memo table sharded across several mutexes, so that
/// concurrent solver workers hitting different candidates rarely contend on
/// the same lock. Keys are the sorted source-id vectors of candidates.
pub(crate) struct ShardedCache<V> {
    shards: Vec<Mutex<HashMap<Vec<u32>, V>>>,
}

impl<V: Copy> ShardedCache<V> {
    fn new() -> Self {
        ShardedCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &[u32]) -> &Mutex<HashMap<Vec<u32>, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % CACHE_SHARDS]
    }

    fn get(&self, key: &[u32]) -> Option<V> {
        self.shard(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key)
            .copied()
    }

    fn insert(&self, key: Vec<u32>, value: V) {
        self.shard(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value);
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }
}

/// A fully specified `µBE` optimization problem.
pub struct Problem {
    universe: Arc<Universe>,
    matcher: Arc<dyn MatchOperator>,
    qefs: WeightedQefs,
    constraints: Constraints,
    ctx: EvalContext,
    /// Memoized overall objective values, `Q(S)` or [`INFEASIBLE_SCORE`].
    cache: ShardedCache<f64>,
    /// Memoized matcher outcomes: `Some(F1)` for feasible candidates,
    /// `None` for infeasible ones. Shared by the full evaluation path and
    /// the delta evaluator, so a candidate's matching runs at most once
    /// across all portfolio workers.
    match_summaries: ShardedCache<Option<f64>>,
}

/// The result of evaluating one candidate source set in full.
#[derive(Debug, Clone)]
pub enum CandidateEval {
    /// Feasible: the mediated schema and quality breakdown.
    Feasible(Solution),
    /// Infeasible under the current constraints.
    Infeasible,
}

impl Problem {
    /// Assembles a problem, validating the constraints against the universe
    /// and precomputing the evaluation context.
    pub fn new(
        universe: Arc<Universe>,
        matcher: Arc<dyn MatchOperator>,
        qefs: WeightedQefs,
        constraints: Constraints,
    ) -> Result<Self, MubeError> {
        constraints.validate(&universe)?;
        let ctx = EvalContext::for_universe(&universe);
        Ok(Problem {
            universe,
            matcher,
            qefs,
            constraints,
            ctx,
            cache: ShardedCache::new(),
            match_summaries: ShardedCache::new(),
        })
    }

    /// The universe.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// The current constraints.
    pub fn constraints(&self) -> &Constraints {
        &self.constraints
    }

    /// The current QEF weighting.
    pub fn qefs(&self) -> &WeightedQefs {
        &self.qefs
    }

    /// The precomputed evaluation context.
    pub fn context(&self) -> &EvalContext {
        &self.ctx
    }

    /// Replaces the constraints (revalidating) and invalidates the
    /// objective cache. This is how session iterations refine the problem.
    pub fn set_constraints(&mut self, constraints: Constraints) -> Result<(), MubeError> {
        constraints.validate(&self.universe)?;
        self.constraints = constraints;
        self.cache.clear();
        self.match_summaries.clear();
        Ok(())
    }

    /// Replaces the QEF weighting and invalidates the objective cache. The
    /// match-summary cache survives: matching depends on the constraints,
    /// not the weights.
    pub fn set_qefs(&mut self, qefs: WeightedQefs) {
        self.qefs = qefs;
        self.cache.clear();
    }

    /// Number of distinct candidates evaluated so far (cache size).
    pub fn distinct_evaluations(&self) -> usize {
        self.cache.len()
    }

    /// Runs the matcher on a candidate and applies the `β` bound: GAs that
    /// did not grow from a user GA constraint and have fewer than `β`
    /// attributes are dropped from the schema. Returns the filtered schema
    /// and `F_1`, or `None` if the candidate is infeasible.
    fn match_and_filter(&self, sources: &BTreeSet<SourceId>) -> Option<(MediatedSchema, f64)> {
        if sources.is_empty() || sources.len() > self.constraints.max_sources {
            return None;
        }
        // Foreign ids (a candidate built against some other universe) are
        // infeasible, not a panic deep inside a matcher or QEF.
        if sources.iter().any(|&s| self.universe.get(s).is_none()) {
            return None;
        }
        let required = self.constraints.effective_required_sources();
        if !required.iter().all(|s| sources.contains(s)) {
            return None;
        }
        let outcome = self
            .matcher
            .match_sources(&self.universe, sources, &self.constraints);
        let MatchOutcome::Matched {
            mut schema,
            quality,
        } = outcome
        else {
            return None;
        };
        let beta = self.constraints.beta;
        let seeds = self.constraints.merged_ga_seeds();
        schema.retain(|ga| ga.len() >= beta || seeds.iter().any(|seed| seed.is_subset_of(ga)));
        // The GA constraints must have survived (they always do — retain
        // keeps them) and the schema must still be valid on the constraint
        // sources.
        if !schema.covers_gas(&self.constraints.required_gas) {
            return None;
        }
        if !schema.is_valid_on(&self.constraints.required_sources) {
            return None;
        }
        Some((schema, quality))
    }

    /// The matcher outcome of a candidate, reduced to the number the QEFs
    /// need: `Some(F1)` if the candidate is feasible, `None` otherwise. The
    /// result is memoized (the matcher is deterministic), so the delta
    /// evaluator and the full path share one matcher run per candidate.
    pub(crate) fn match_quality_of(&self, sources: &BTreeSet<SourceId>) -> Option<f64> {
        let key: Vec<u32> = sources.iter().map(|s| s.0).collect();
        if let Some(summary) = self.match_summaries.get(&key) {
            return summary;
        }
        let summary = self.match_and_filter(sources).map(|(_, quality)| quality);
        self.match_summaries.insert(key, summary);
        summary
    }

    /// Fully evaluates one candidate: matching, β filtering, QEF scoring.
    pub fn evaluate(&self, sources: &BTreeSet<SourceId>) -> CandidateEval {
        let Some((schema, match_quality)) = self.match_and_filter(sources) else {
            return CandidateEval::Infeasible;
        };
        let input = EvalInput {
            universe: &self.universe,
            sources,
            schema: &schema,
            match_quality,
        };
        let (quality, qef_scores) = self.qefs.evaluate(&self.ctx, &input);
        CandidateEval::Feasible(Solution {
            sources: sources.clone(),
            schema,
            quality,
            qef_scores,
            evaluations: 0,
            timed_out: false,
        })
    }

    /// The (cached) objective value of a candidate: `Q(S)` if feasible,
    /// [`INFEASIBLE_SCORE`] otherwise.
    pub fn objective(&self, sources: &BTreeSet<SourceId>) -> f64 {
        let key: Vec<u32> = sources.iter().map(|s| s.0).collect();
        if let Some(v) = self.cache.get(&key) {
            return v;
        }
        let v = match self.evaluate(sources) {
            CandidateEval::Feasible(sol) => sol.quality,
            CandidateEval::Infeasible => INFEASIBLE_SCORE,
        };
        self.cache.insert(key, v);
        v
    }

    /// Solves the problem with the given solver and seed, returning the best
    /// feasible solution.
    pub fn solve(&self, solver: &dyn SubsetSolver, seed: u64) -> Result<Solution, MubeError> {
        self.finish(solver.solve(self, seed), solver)
    }

    /// Like [`Problem::solve`], polling `cancel` between evaluations: when
    /// the token fires (deadline or explicit cancel) the best-so-far
    /// incumbent is returned with [`Solution::timed_out`] set.
    pub fn solve_cancel(
        &self,
        solver: &dyn SubsetSolver,
        seed: u64,
        cancel: &mube_opt::CancelToken,
    ) -> Result<Solution, MubeError> {
        self.finish(solver.solve_cancel(self, seed, cancel), solver)
    }

    /// Solves warm-started from a previous solution's source set (only
    /// effective for solvers that support warm starts, i.e. tabu search).
    pub fn solve_from(
        &self,
        solver: &dyn SubsetSolver,
        seed: u64,
        warm: &BTreeSet<SourceId>,
    ) -> Result<Solution, MubeError> {
        let indices: Vec<usize> = warm.iter().map(|s| s.index()).collect();
        self.finish(solver.solve_from(self, seed, &indices), solver)
    }

    /// Solves warm-started *within a trust region*: solvers that support it
    /// (tabu search) return a solution at Hamming distance at most `radius`
    /// from the repaired warm start — the mechanism behind
    /// [`crate::session::Session::with_continuity`].
    pub fn solve_near(
        &self,
        solver: &dyn SubsetSolver,
        seed: u64,
        warm: &BTreeSet<SourceId>,
        radius: usize,
    ) -> Result<Solution, MubeError> {
        let indices: Vec<usize> = warm.iter().map(|s| s.index()).collect();
        self.finish(solver.solve_within(self, seed, &indices, radius), solver)
    }

    /// Cancellable form of [`Problem::solve_near`].
    pub fn solve_near_cancel(
        &self,
        solver: &dyn SubsetSolver,
        seed: u64,
        warm: &BTreeSet<SourceId>,
        radius: usize,
        cancel: &mube_opt::CancelToken,
    ) -> Result<Solution, MubeError> {
        let indices: Vec<usize> = warm.iter().map(|s| s.index()).collect();
        self.finish(
            solver.solve_within_cancel(self, seed, &indices, radius, cancel),
            solver,
        )
    }

    /// Solves with tabu search and returns up to `k` of the best *distinct
    /// feasible* solutions it encountered, best first — the alternatives a
    /// user explores alongside the winner. Infeasible elites (possible when
    /// the search crossed infeasible regions) are filtered out.
    pub fn alternatives(
        &self,
        tabu: &mube_opt::TabuSearch,
        seed: u64,
        k: usize,
    ) -> Result<Vec<Solution>, MubeError> {
        let (_, elites) = tabu.solve_topk(self, seed, k);
        let mut out = Vec::with_capacity(elites.len());
        for (_, selected) in elites {
            let sources: BTreeSet<SourceId> =
                selected.iter().map(|&i| SourceId(i as u32)).collect();
            if let CandidateEval::Feasible(sol) = self.evaluate(&sources) {
                out.push(sol);
            }
        }
        if out.is_empty() {
            return Err(MubeError::ConstraintConflict {
                detail: "no feasible solution found within the budget".into(),
            });
        }
        Ok(out)
    }

    fn finish(
        &self,
        result: SolveResult,
        solver: &dyn SubsetSolver,
    ) -> Result<Solution, MubeError> {
        let sources: BTreeSet<SourceId> = result
            .selected
            .iter()
            .map(|&i| SourceId(i as u32))
            .collect();
        match self.evaluate(&sources) {
            CandidateEval::Feasible(mut sol) => {
                sol.evaluations = result.evaluations;
                sol.timed_out = result.timed_out;
                Ok(sol)
            }
            CandidateEval::Infeasible => Err(MubeError::ConstraintConflict {
                detail: format!(
                    "no feasible solution found by `{}` within its budget",
                    solver.name()
                ),
            }),
        }
    }
}

impl SubsetObjective for Problem {
    fn universe_size(&self) -> usize {
        self.universe.len()
    }

    fn max_selected(&self) -> usize {
        self.constraints.max_sources
    }

    fn required(&self) -> Vec<usize> {
        self.constraints
            .effective_required_sources()
            .iter()
            .map(|s| s.index())
            .collect()
    }

    fn score(&self, selected: &[usize]) -> f64 {
        let sources: BTreeSet<SourceId> = selected.iter().map(|&i| SourceId(i as u32)).collect();
        self.objective(&sources)
    }

    fn worker_view(&self) -> Option<Box<dyn SubsetObjective + '_>> {
        // With an opaque (schema-reading) QEF in play the delta evaluator
        // would fall back to uncached full evaluations; sharing `self` (and
        // its sharded objective cache) across workers is then faster.
        let all_incremental = self
            .qefs
            .iter()
            .all(|(q, _)| q.delta_class() != crate::qef::DeltaClass::Opaque);
        all_incremental
            .then(|| Box::new(crate::delta::DeltaObjective::new(self)) as Box<dyn SubsetObjective>)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::GlobalAttribute;
    use crate::ids::AttrId;
    use crate::matchop::IdentityMatcher;
    use crate::qefs::data_only_qefs;
    use crate::schema::Schema;
    use crate::source::SourceSpec;
    use mube_opt::TabuSearch;
    use mube_sketch::pcsa::{PcsaConfig, PcsaSignature};

    fn sig(keys: std::ops::Range<u64>) -> PcsaSignature {
        let mut s = PcsaSignature::new(PcsaConfig::new(32, 32, 99));
        for k in keys {
            s.insert(k);
        }
        s
    }

    fn universe(n: u32) -> Arc<Universe> {
        let mut b = Universe::builder();
        for i in 0..n {
            let lo = u64::from(i) * 1000;
            b.add_source(
                SourceSpec::new(format!("src{i}"), Schema::new(["x", "y"]))
                    .cardinality(1000 + u64::from(i) * 100)
                    .signature(sig(lo..lo + 1000)),
            );
        }
        Arc::new(b.build().unwrap())
    }

    fn problem(n: u32, m: usize) -> Problem {
        // β = 1 so the identity matcher's singleton GAs survive filtering.
        let constraints = Constraints::with_max_sources(m).beta(1);
        Problem::new(
            universe(n),
            Arc::new(IdentityMatcher),
            data_only_qefs(),
            constraints,
        )
        .unwrap()
    }

    #[test]
    fn feasible_candidates_score_in_unit_interval() {
        let p = problem(5, 3);
        let s: BTreeSet<_> = [SourceId(0), SourceId(2)].into();
        let v = p.objective(&s);
        assert!((0.0..=1.0).contains(&v), "v={v}");
    }

    #[test]
    fn oversized_candidates_are_infeasible() {
        let p = problem(5, 2);
        let s: BTreeSet<_> = [SourceId(0), SourceId(1), SourceId(2)].into();
        assert_eq!(p.objective(&s), INFEASIBLE_SCORE);
    }

    #[test]
    fn empty_candidate_is_infeasible() {
        let p = problem(3, 2);
        assert_eq!(p.objective(&BTreeSet::new()), INFEASIBLE_SCORE);
    }

    #[test]
    fn foreign_source_ids_are_infeasible_not_a_panic() {
        let p = problem(3, 2);
        let s: BTreeSet<_> = [SourceId(0), SourceId(99)].into();
        assert_eq!(p.objective(&s), INFEASIBLE_SCORE);
    }

    #[test]
    fn missing_required_source_is_infeasible() {
        let universe = universe(4);
        let constraints = Constraints::with_max_sources(2)
            .beta(1)
            .require_source(SourceId(3));
        let p = Problem::new(
            universe,
            Arc::new(IdentityMatcher),
            data_only_qefs(),
            constraints,
        )
        .unwrap();
        let without: BTreeSet<_> = [SourceId(0)].into();
        assert_eq!(p.objective(&without), INFEASIBLE_SCORE);
        let with: BTreeSet<_> = [SourceId(0), SourceId(3)].into();
        assert!(p.objective(&with) >= 0.0);
    }

    #[test]
    fn beta_filters_small_gas() {
        // With β=2 and the identity matcher (singletons only), every GA is
        // dropped; with no constraint sources the schema trivially remains
        // valid, and matching quality still reports the matcher's value.
        let constraints = Constraints::with_max_sources(3).beta(2);
        let p = Problem::new(
            universe(3),
            Arc::new(IdentityMatcher),
            data_only_qefs(),
            constraints,
        )
        .unwrap();
        let s: BTreeSet<_> = [SourceId(0), SourceId(1)].into();
        match p.evaluate(&s) {
            CandidateEval::Feasible(sol) => assert!(sol.schema.is_empty()),
            CandidateEval::Infeasible => panic!("expected feasible"),
        }
    }

    #[test]
    fn beta_spares_user_gas() {
        let ga = GlobalAttribute::try_new([AttrId::new(SourceId(0), 0)]).unwrap();
        let constraints = Constraints::with_max_sources(3)
            .beta(2)
            .require_ga(ga.clone());
        let p = Problem::new(
            universe(3),
            Arc::new(IdentityMatcher),
            data_only_qefs(),
            constraints,
        )
        .unwrap();
        let s: BTreeSet<_> = [SourceId(0), SourceId(1)].into();
        match p.evaluate(&s) {
            CandidateEval::Feasible(sol) => {
                assert_eq!(sol.schema.len(), 1);
                assert!(sol.schema.covers_gas(&[ga]));
            }
            CandidateEval::Infeasible => panic!("expected feasible"),
        }
    }

    #[test]
    fn objective_cache_hits() {
        let p = problem(5, 3);
        let s: BTreeSet<_> = [SourceId(0), SourceId(1)].into();
        let a = p.objective(&s);
        let before = p.distinct_evaluations();
        let b = p.objective(&s);
        assert_eq!(a, b);
        assert_eq!(p.distinct_evaluations(), before);
    }

    /// Contention regression test for the sharded objective cache: many
    /// threads scoring overlapping candidate sets concurrently must all see
    /// the single-threaded values, and the cache must end up with exactly
    /// one entry per distinct candidate.
    #[test]
    fn concurrent_objective_calls_agree_with_serial() {
        let p = problem(8, 3);
        let candidates: Vec<BTreeSet<SourceId>> = (0..8u32)
            .flat_map(|a| (0..8u32).map(move |b| [SourceId(a), SourceId(b)].into()))
            .collect();
        let expected: Vec<f64> = candidates.iter().map(|c| p.objective(c)).collect();
        let distinct_before = p.distinct_evaluations();
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let p = &p;
                let candidates = &candidates;
                let expected = &expected;
                scope.spawn(move || {
                    for round in 0..20 {
                        for i in 0..candidates.len() {
                            let k = (i + t * 7 + round) % candidates.len();
                            assert_eq!(
                                p.objective(&candidates[k]).to_bits(),
                                expected[k].to_bits()
                            );
                        }
                    }
                });
            }
        });
        assert_eq!(p.distinct_evaluations(), distinct_before);
    }

    #[test]
    fn match_summaries_survive_reweighting() {
        let mut p = problem(5, 3);
        let s: BTreeSet<_> = [SourceId(0), SourceId(1)].into();
        let q1 = p.match_quality_of(&s);
        p.set_qefs(data_only_qefs());
        assert_eq!(p.distinct_evaluations(), 0, "objective cache cleared");
        assert_eq!(p.match_quality_of(&s), q1, "summary cache retained");
        p.set_constraints(Constraints::with_max_sources(4).beta(1))
            .unwrap();
        // Constraints affect matching, so the summary cache must go too —
        // recomputing under the new constraints still succeeds.
        assert!(p.match_quality_of(&s).is_some());
    }

    #[test]
    fn set_constraints_invalidates_cache() {
        let mut p = problem(5, 3);
        let s: BTreeSet<_> = [SourceId(0)].into();
        let _ = p.objective(&s);
        assert!(p.distinct_evaluations() > 0);
        p.set_constraints(Constraints::with_max_sources(4).beta(1))
            .unwrap();
        assert_eq!(p.distinct_evaluations(), 0);
    }

    #[test]
    fn solve_returns_feasible_solution() {
        let p = problem(8, 3);
        let sol = p.solve(&TabuSearch::default(), 42).unwrap();
        assert!(sol.sources.len() <= 3);
        assert!(!sol.sources.is_empty());
        assert!((0.0..=1.0).contains(&sol.quality));
        assert!(sol.evaluations > 0);
    }

    #[test]
    fn solve_honours_required_sources() {
        let universe = universe(8);
        let constraints = Constraints::with_max_sources(3)
            .beta(1)
            .require_source(SourceId(1));
        let p = Problem::new(
            universe,
            Arc::new(IdentityMatcher),
            data_only_qefs(),
            constraints,
        )
        .unwrap();
        let sol = p.solve(&TabuSearch::default(), 1).unwrap();
        assert!(sol.sources.contains(&SourceId(1)));
    }

    #[test]
    fn invalid_constraints_rejected_at_construction() {
        let err = Problem::new(
            universe(2),
            Arc::new(IdentityMatcher),
            data_only_qefs(),
            Constraints::with_max_sources(1).require_source(SourceId(9)),
        );
        assert!(err.is_err());
    }
}

#[cfg(test)]
mod alternatives_tests {
    use super::*;
    use crate::constraints::Constraints;
    use crate::matchop::IdentityMatcher;
    use crate::qefs::data_only_qefs;
    use crate::schema::Schema;
    use crate::source::SourceSpec;

    #[test]
    fn alternatives_are_distinct_feasible_and_sorted() {
        let mut b = Universe::builder();
        for i in 0..10u32 {
            b.add_source(
                SourceSpec::new(format!("s{i}"), Schema::new(["x"]))
                    .cardinality(100 + u64::from(i) * 50),
            );
        }
        let p = Problem::new(
            Arc::new(b.build().unwrap()),
            Arc::new(IdentityMatcher),
            data_only_qefs(),
            Constraints::with_max_sources(3).beta(1),
        )
        .unwrap();
        let alts = p
            .alternatives(&mube_opt::TabuSearch::default(), 5, 4)
            .unwrap();
        assert!(!alts.is_empty() && alts.len() <= 4);
        for w in alts.windows(2) {
            assert!(w[0].quality >= w[1].quality, "sorted best first");
            assert_ne!(w[0].sources, w[1].sources, "distinct selections");
        }
        // The first alternative is the solve() winner.
        let winner = p.solve(&mube_opt::TabuSearch::default(), 5).unwrap();
        assert_eq!(alts[0].sources, winner.sources);
    }
}

//! QEFs over per-source characteristics (§5).
//!
//! Characteristics are positive reals of any magnitude (latency in ms, fees
//! in dollars, MTTF in days, ...). A characteristic QEF aggregates the
//! values of the selected sources into a `[0, 1]` score using a pluggable
//! [`Aggregator`]. The paper's example is the cardinality-weighted sum
//! `wsum`: a highly-available source with many tuples is worth more than a
//! highly-available source with few tuples.

use std::sync::Arc;

use crate::qef::{DeltaClass, EvalContext, EvalInput, Qef};

/// Aggregates normalized characteristic values of a selection into `[0, 1]`.
///
/// `values` holds, per selected source that defines the characteristic, the
/// raw value and the source's cardinality. `range` is the universe-wide
/// `(min, max)` for normalization.
pub trait Aggregator: Send + Sync {
    /// Computes the aggregate score.
    fn aggregate(&self, values: &[(f64, u64)], range: (f64, f64)) -> f64;
}

/// Normalizes a raw value into `[0, 1]` given a universe range. A degenerate
/// range (all sources equal) normalizes to 1: every choice is equally good.
fn normalize(value: f64, (lo, hi): (f64, f64)) -> f64 {
    if hi - lo <= f64::EPSILON {
        1.0
    } else {
        ((value - lo) / (hi - lo)).clamp(0.0, 1.0)
    }
}

/// The paper's `wsum` aggregation: normalized values weighted by source
/// cardinality,
/// `wsum(S) = Σ_s (q_s − min) · |s| / (Σ_s |s| · (max − min))`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedSumAgg;

impl Aggregator for WeightedSumAgg {
    fn aggregate(&self, values: &[(f64, u64)], range: (f64, f64)) -> f64 {
        let total_card: u64 = values.iter().map(|&(_, c)| c).sum();
        if total_card == 0 {
            // Degenerate: no tuples to weight by; fall back to a plain mean.
            return MeanAgg.aggregate(values, range);
        }
        let weighted: f64 = values
            .iter()
            .map(|&(v, c)| normalize(v, range) * c as f64)
            .sum();
        (weighted / total_card as f64).clamp(0.0, 1.0)
    }
}

/// Unweighted mean of the normalized values.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanAgg;

impl Aggregator for MeanAgg {
    fn aggregate(&self, values: &[(f64, u64)], range: (f64, f64)) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let sum: f64 = values.iter().map(|&(v, _)| normalize(v, range)).sum();
        sum / values.len() as f64
    }
}

/// Worst (minimum) normalized value — pessimistic aggregation, e.g. "the
/// selection is only as reliable as its least reliable source".
#[derive(Debug, Clone, Copy, Default)]
pub struct MinAgg;

impl Aggregator for MinAgg {
    fn aggregate(&self, values: &[(f64, u64)], range: (f64, f64)) -> f64 {
        values
            .iter()
            .map(|&(v, _)| normalize(v, range))
            .fold(f64::INFINITY, f64::min)
            .clamp(0.0, 1.0)
    }
}

/// Best (maximum) normalized value — optimistic aggregation.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxAgg;

impl Aggregator for MaxAgg {
    fn aggregate(&self, values: &[(f64, u64)], range: (f64, f64)) -> f64 {
        values
            .iter()
            .map(|&(v, _)| normalize(v, range))
            .fold(0.0, f64::max)
            .min(1.0)
    }
}

/// A QEF scoring one named characteristic with a chosen aggregation.
///
/// Sources that do not define the characteristic are treated as having the
/// universe minimum (worst), so an unreported value can never *improve* a
/// selection's score.
pub struct CharacteristicQef {
    qef_name: String,
    characteristic: String,
    aggregator: Arc<dyn Aggregator>,
}

impl CharacteristicQef {
    /// Creates a characteristic QEF.
    pub fn new(
        qef_name: impl Into<String>,
        characteristic: impl Into<String>,
        aggregator: impl Aggregator + 'static,
    ) -> Self {
        CharacteristicQef {
            qef_name: qef_name.into(),
            characteristic: characteristic.into(),
            aggregator: Arc::new(aggregator),
        }
    }
}

impl Qef for CharacteristicQef {
    fn name(&self) -> &str {
        &self.qef_name
    }

    fn delta_class(&self) -> DeltaClass {
        DeltaClass::SelectionOnly
    }

    fn evaluate(&self, ctx: &EvalContext, input: &EvalInput<'_>) -> f64 {
        let Some(&range) = ctx.characteristic_ranges.get(&self.characteristic) else {
            // No source in the universe defines this characteristic.
            return 0.0;
        };
        if input.sources.is_empty() {
            return 0.0;
        }
        let values: Vec<(f64, u64)> = input
            .sources
            .iter()
            .map(|&sid| {
                let s = input.universe.source(sid);
                (
                    s.characteristic(&self.characteristic).unwrap_or(range.0),
                    s.cardinality(),
                )
            })
            .collect();
        self.aggregator.aggregate(&values, range).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::MediatedSchema;
    use crate::ids::SourceId;
    use crate::schema::Schema;
    use crate::source::{SourceSpec, Universe};
    use std::collections::BTreeSet;

    fn universe() -> Universe {
        let mut b = Universe::builder();
        b.add_source(
            SourceSpec::new("lo", Schema::new(["x"]))
                .cardinality(100)
                .characteristic("mttf", 50.0),
        );
        b.add_source(
            SourceSpec::new("hi", Schema::new(["y"]))
                .cardinality(900)
                .characteristic("mttf", 150.0),
        );
        b.add_source(SourceSpec::new("none", Schema::new(["z"])).cardinality(100));
        b.build().unwrap()
    }

    fn eval(qef: &CharacteristicQef, u: &Universe, picks: &[u32]) -> f64 {
        let ctx = EvalContext::for_universe(u);
        let sources: BTreeSet<_> = picks.iter().map(|&i| SourceId(i)).collect();
        let schema = MediatedSchema::empty();
        let input = EvalInput {
            universe: u,
            sources: &sources,
            schema: &schema,
            match_quality: 0.0,
        };
        qef.evaluate(&ctx, &input)
    }

    #[test]
    fn wsum_weights_by_cardinality() {
        let u = universe();
        let qef = CharacteristicQef::new("mttf", "mttf", WeightedSumAgg);
        // lo normalizes to 0, hi to 1; weighted by cardinality 100 vs 900.
        let v = eval(&qef, &u, &[0, 1]);
        assert!((v - 0.9).abs() < 1e-9, "v={v}");
    }

    #[test]
    fn mean_ignores_cardinality() {
        let u = universe();
        let qef = CharacteristicQef::new("mttf", "mttf", MeanAgg);
        let v = eval(&qef, &u, &[0, 1]);
        assert!((v - 0.5).abs() < 1e-9, "v={v}");
    }

    #[test]
    fn min_and_max() {
        let u = universe();
        let qmin = CharacteristicQef::new("mttf", "mttf", MinAgg);
        let qmax = CharacteristicQef::new("mttf", "mttf", MaxAgg);
        assert_eq!(eval(&qmin, &u, &[0, 1]), 0.0);
        assert_eq!(eval(&qmax, &u, &[0, 1]), 1.0);
    }

    #[test]
    fn missing_value_treated_as_worst() {
        let u = universe();
        let qef = CharacteristicQef::new("mttf", "mttf", MaxAgg);
        assert_eq!(eval(&qef, &u, &[2]), 0.0);
    }

    #[test]
    fn unknown_characteristic_scores_zero() {
        let u = universe();
        let qef = CharacteristicQef::new("latency", "latency", WeightedSumAgg);
        assert_eq!(eval(&qef, &u, &[0, 1]), 0.0);
    }

    #[test]
    fn degenerate_range_scores_one() {
        let mut b = Universe::builder();
        b.add_source(
            SourceSpec::new("a", Schema::new(["x"]))
                .cardinality(10)
                .characteristic("fee", 5.0),
        );
        b.add_source(
            SourceSpec::new("b", Schema::new(["y"]))
                .cardinality(10)
                .characteristic("fee", 5.0),
        );
        let u = b.build().unwrap();
        let qef = CharacteristicQef::new("fee", "fee", WeightedSumAgg);
        assert_eq!(eval(&qef, &u, &[0, 1]), 1.0);
    }

    #[test]
    fn empty_selection_scores_zero() {
        let u = universe();
        let qef = CharacteristicQef::new("mttf", "mttf", WeightedSumAgg);
        assert_eq!(eval(&qef, &u, &[]), 0.0);
    }
}

//! `F_1` — matching quality.
//!
//! The matching quality of a candidate is produced *by the matching
//! operator* while it generates the mediated schema (average over the GAs of
//! the best intra-GA pair similarity, §3); this QEF simply surfaces that
//! number into the weighted quality framework.

use crate::qef::{DeltaClass, EvalContext, EvalInput, Qef};

/// The matching-quality QEF (`F_1` in the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchingQualityQef;

impl Qef for MatchingQualityQef {
    fn name(&self) -> &str {
        "matching"
    }

    fn delta_class(&self) -> DeltaClass {
        DeltaClass::MatchQuality
    }

    fn evaluate(&self, _ctx: &EvalContext, input: &EvalInput<'_>) -> f64 {
        input.match_quality.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::MediatedSchema;
    use crate::schema::Schema;
    use crate::source::{SourceSpec, Universe};
    use std::collections::BTreeSet;

    #[test]
    fn passes_through_match_quality() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("a", Schema::new(["x"])));
        let u = b.build().unwrap();
        let ctx = EvalContext::for_universe(&u);
        let sources: BTreeSet<_> = u.source_ids().collect();
        let schema = MediatedSchema::empty();
        for q in [0.0, 0.42, 1.0, 1.7, -0.3] {
            let input = EvalInput {
                universe: &u,
                sources: &sources,
                schema: &schema,
                match_quality: q,
            };
            let got = MatchingQualityQef.evaluate(&ctx, &input);
            assert_eq!(got, q.clamp(0.0, 1.0));
        }
    }
}

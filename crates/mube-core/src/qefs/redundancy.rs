//! `F_4` — redundancy: how much the selected sources overlap.
//!
//! The paper defines redundancy so that 1 is best (no overlap: every fetched
//! tuple is new) and 0 is worst (every source repeats the same data). We
//! reconstruct the garbled display equation as
//!
//! ```text
//! Redundancy(S) = 1 − (Σ_{s∈S}|s| − |∪_{s∈S} s|) / ((|S|−1) · |∪_{s∈S} s|)
//! ```
//!
//! i.e. one minus the duplicated-tuple mass normalized by its maximum
//! possible value: since each `|s| ≤ |∪S|`, the overlap `Σ|s| − |∪S|` can
//! reach at most `(|S|−1)·|∪S|` (all sources identical). Pairwise-disjoint
//! selections score exactly 1, `k` copies of one source score exactly 0,
//! and the value is always in `[0, 1]` — matching every property the prose
//! states. Union cardinalities are estimated from the PCSA signatures.
//!
//! Selections with no cooperating source score 0 (the paper assigns
//! uncooperative sources the worst redundancy).

use crate::qef::{DeltaClass, EvalContext, EvalInput, Qef};

use super::coverage::union_signature;

/// The redundancy QEF (`Redundancy(S)` in the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct RedundancyQef;

impl Qef for RedundancyQef {
    fn name(&self) -> &str {
        "redundancy"
    }

    fn delta_class(&self) -> DeltaClass {
        DeltaClass::UnionRedundancy
    }

    fn evaluate(&self, _ctx: &EvalContext, input: &EvalInput<'_>) -> f64 {
        let cooperating: Vec<_> = input
            .sources
            .iter()
            .filter(|&&s| input.universe.source(s).cooperates())
            .collect();
        if cooperating.is_empty() {
            return 0.0;
        }
        if cooperating.len() == 1 {
            // A single source cannot overlap with itself.
            return 1.0;
        }
        let fetched: u64 = cooperating
            .iter()
            .map(|&&s| input.universe.source(s).cardinality())
            .sum();
        if fetched == 0 {
            return 1.0;
        }
        let distinct = union_signature(input.universe, cooperating.iter().copied())
            .map_or(0.0, |sig| sig.estimate());
        if distinct <= 0.0 {
            return 1.0;
        }
        // PCSA noise can push the estimated union slightly above the summed
        // cardinalities; clamp the overlap into its theoretical range.
        let overlap = (fetched as f64 - distinct).max(0.0);
        let max_overlap = (cooperating.len() - 1) as f64 * distinct;
        (1.0 - overlap / max_overlap).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::MediatedSchema;
    use crate::ids::SourceId;
    use crate::schema::Schema;
    use crate::source::{SourceSpec, Universe};
    use mube_sketch::pcsa::{PcsaConfig, PcsaSignature};
    use std::collections::BTreeSet;

    fn sig(keys: std::ops::Range<u64>) -> PcsaSignature {
        let mut s = PcsaSignature::new(PcsaConfig::new(256, 32, 7));
        for k in keys {
            s.insert(k);
        }
        s
    }

    fn universe() -> Universe {
        let mut b = Universe::builder();
        b.add_source(
            SourceSpec::new("a", Schema::new(["x"]))
                .cardinality(10_000)
                .signature(sig(0..10_000)),
        );
        b.add_source(
            SourceSpec::new("a2", Schema::new(["y"]))
                .cardinality(10_000)
                .signature(sig(0..10_000)),
        );
        b.add_source(
            SourceSpec::new("c", Schema::new(["z"]))
                .cardinality(10_000)
                .signature(sig(10_000..20_000)),
        );
        b.add_source(
            SourceSpec::new("d", Schema::new(["w"]))
                .cardinality(10_000)
                .signature(sig(20_000..30_000)),
        );
        b.add_source(SourceSpec::new("shy", Schema::new(["v"])).cardinality(10_000));
        b.build().unwrap()
    }

    fn eval(u: &Universe, picks: &[u32]) -> f64 {
        let ctx = EvalContext::for_universe(u);
        let sources: BTreeSet<_> = picks.iter().map(|&i| SourceId(i)).collect();
        let schema = MediatedSchema::empty();
        let input = EvalInput {
            universe: u,
            sources: &sources,
            schema: &schema,
            match_quality: 0.0,
        };
        RedundancyQef.evaluate(&ctx, &input)
    }

    #[test]
    fn single_source_is_nonredundant() {
        let u = universe();
        assert_eq!(eval(&u, &[0]), 1.0);
    }

    #[test]
    fn identical_pair_scores_near_zero() {
        let u = universe();
        let r = eval(&u, &[0, 1]);
        assert!(r < 0.1, "r={r}");
    }

    #[test]
    fn disjoint_sources_stay_nonredundant() {
        let u = universe();
        let r2 = eval(&u, &[0, 2]);
        let r3 = eval(&u, &[0, 2, 3]);
        assert!(r2 > 0.75, "r2={r2}");
        assert!(r3 > 0.75, "r3={r3}");
    }

    #[test]
    fn duplicate_among_disjoint_is_midrange() {
        // {a, a2, c, d}: one duplicated source among three distinct data
        // sets → overlap 1·10k of max 3·30k ≈ 0.89.
        let u = universe();
        let r = eval(&u, &[0, 1, 2, 3]);
        assert!(r > 0.7 && r < 1.0, "r={r}");
    }

    #[test]
    fn uncooperative_only_scores_zero() {
        let u = universe();
        assert_eq!(eval(&u, &[4]), 0.0);
    }

    #[test]
    fn empty_selection_scores_zero() {
        let u = universe();
        assert_eq!(eval(&u, &[]), 0.0);
    }

    #[test]
    fn in_unit_interval_on_mixes() {
        let u = universe();
        for picks in [vec![0, 1, 2], vec![1, 3], vec![0, 1, 2, 3, 4]] {
            let r = eval(&u, &picks.iter().map(|&i| i as u32).collect::<Vec<_>>());
            assert!((0.0..=1.0).contains(&r), "picks {picks:?} → {r}");
        }
    }
}

//! The built-in Quality Evaluation Functions.
//!
//! The paper defines four main QEFs — matching quality `F_1` (§3) and the
//! data-dependent cardinality, coverage, and redundancy `F_2..F_4` (§4) —
//! plus user-defined QEFs over per-source characteristics such as MTTF,
//! latency, or fees (§5). Each lives in its own module here; all implement
//! [`crate::qef::Qef`].

pub mod card;
pub mod characteristic;
pub mod coverage;
pub mod matching;
pub mod redundancy;

pub use card::CardinalityQef;
pub use characteristic::{Aggregator, CharacteristicQef, MaxAgg, MeanAgg, MinAgg, WeightedSumAgg};
pub use coverage::{coverage_fraction, forfeited_coverage, CoverageQef};
pub use matching::MatchingQualityQef;
pub use redundancy::RedundancyQef;

use std::sync::Arc;

use crate::qef::{Qef, WeightedQefs};

/// The paper's default QEF mix (§7.1): matching 0.25, cardinality 0.25,
/// coverage 0.2, redundancy 0.15, and a `wsum`-aggregated characteristic
/// (MTTF in the experiments) 0.15.
pub fn paper_default_qefs(characteristic: &str) -> WeightedQefs {
    WeightedQefs::new(vec![
        (Arc::new(MatchingQualityQef) as Arc<dyn Qef>, 0.25),
        (Arc::new(CardinalityQef) as Arc<dyn Qef>, 0.25),
        (Arc::new(CoverageQef) as Arc<dyn Qef>, 0.20),
        (Arc::new(RedundancyQef) as Arc<dyn Qef>, 0.15),
        (
            Arc::new(CharacteristicQef::new(
                characteristic,
                characteristic,
                WeightedSumAgg,
            )) as Arc<dyn Qef>,
            0.15,
        ),
    ])
    .expect("default weights are valid")
}

/// A QEF mix without any characteristic QEF — matching 0.3, cardinality 0.3,
/// coverage 0.25, redundancy 0.15. Used when sources carry no
/// characteristics.
pub fn data_only_qefs() -> WeightedQefs {
    WeightedQefs::new(vec![
        (Arc::new(MatchingQualityQef) as Arc<dyn Qef>, 0.30),
        (Arc::new(CardinalityQef) as Arc<dyn Qef>, 0.30),
        (Arc::new(CoverageQef) as Arc<dyn Qef>, 0.25),
        (Arc::new(RedundancyQef) as Arc<dyn Qef>, 0.15),
    ])
    .expect("default weights are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mixes_are_valid() {
        let q = paper_default_qefs("mttf");
        assert_eq!(q.len(), 5);
        assert_eq!(q.weight_of("matching"), Some(0.25));
        assert_eq!(q.weight_of("mttf"), Some(0.15));
        let d = data_only_qefs();
        assert_eq!(d.len(), 4);
    }
}

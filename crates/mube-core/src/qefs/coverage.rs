//! `F_3` — coverage: how much of the universe's distinct data the selection
//! can reach.
//!
//! `Coverage(S) = |∪_{s∈S} s| / |∪_{t∈U} t|`, with the union cardinalities
//! *estimated* from the PCSA signatures the cooperating sources export: the
//! signature of a union is the bitwise OR of the signatures (§4). Sources
//! that do not cooperate (no signature) contribute nothing to coverage, per
//! the paper's fallback rule.

use mube_sketch::PcsaSignature;

use crate::ids::SourceId;
use crate::qef::{DeltaClass, EvalContext, EvalInput, Qef};
use crate::source::Universe;

/// The coverage QEF (`Coverage(S)` in the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct CoverageQef;

/// ORs together the signatures of the cooperating sources in a selection.
/// Returns `None` if no selected source cooperates.
pub fn union_signature<'a, I>(universe: &Universe, sources: I) -> Option<PcsaSignature>
where
    I: IntoIterator<Item = &'a SourceId>,
{
    let mut acc: Option<PcsaSignature> = None;
    for &sid in sources {
        if let Some(sig) = universe.source(sid).signature() {
            match &mut acc {
                None => acc = Some(sig.clone()),
                Some(u) => u
                    .union_assign(sig)
                    .expect("universe builder guarantees matching signature configs"),
            }
        }
    }
    acc
}

/// Estimated number of distinct tuples in a selection (0 if nothing
/// cooperates).
pub fn estimated_distinct(universe: &Universe, input: &EvalInput<'_>) -> f64 {
    union_signature(universe, input.sources.iter()).map_or(0.0, |s| s.estimate())
}

/// Estimated coverage fraction of an arbitrary source set: estimated
/// distinct tuples of the selection over the estimated distinct tuples of
/// the whole universe, both from PCSA signatures. Standalone variant of
/// [`CoverageQef`] for callers outside the QEF evaluation loop (e.g. the
/// executor's degradation accounting).
pub fn coverage_fraction(
    universe: &Universe,
    sources: &std::collections::BTreeSet<SourceId>,
) -> f64 {
    let total = union_signature(universe, universe.source_ids().collect::<Vec<_>>().iter())
        .map_or(0.0, |s| s.estimate());
    if total <= 0.0 {
        return 0.0;
    }
    let selected = union_signature(universe, sources.iter()).map_or(0.0, |s| s.estimate());
    (selected / total).clamp(0.0, 1.0)
}

/// Coverage forfeited when only `survivors ⊆ selected` actually answered:
/// `coverage(selected) − coverage(survivors)`, clamped at zero (PCSA union
/// estimates are monotone in the source set, so the clamp only absorbs
/// floating-point noise). This is the F3 loss a degraded execution reports.
pub fn forfeited_coverage(
    universe: &Universe,
    selected: &std::collections::BTreeSet<SourceId>,
    survivors: &std::collections::BTreeSet<SourceId>,
) -> f64 {
    (coverage_fraction(universe, selected) - coverage_fraction(universe, survivors)).max(0.0)
}

impl Qef for CoverageQef {
    fn name(&self) -> &str {
        "coverage"
    }

    fn delta_class(&self) -> DeltaClass {
        DeltaClass::UnionCoverage
    }

    fn evaluate(&self, ctx: &EvalContext, input: &EvalInput<'_>) -> f64 {
        if ctx.universe_distinct <= 0.0 {
            return 0.0;
        }
        let selected = estimated_distinct(input.universe, input);
        (selected / ctx.universe_distinct).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::MediatedSchema;
    use crate::schema::Schema;
    use crate::source::SourceSpec;
    use mube_sketch::pcsa::PcsaConfig;
    use std::collections::BTreeSet;

    fn sig(keys: std::ops::Range<u64>) -> PcsaSignature {
        let mut s = PcsaSignature::new(PcsaConfig::new(64, 32, 7));
        for k in keys {
            s.insert(k);
        }
        s
    }

    fn universe() -> Universe {
        let mut b = Universe::builder();
        // a and b overlap heavily; c is disjoint.
        b.add_source(
            SourceSpec::new("a", Schema::new(["x"]))
                .cardinality(10_000)
                .signature(sig(0..10_000)),
        );
        b.add_source(
            SourceSpec::new("b", Schema::new(["y"]))
                .cardinality(10_000)
                .signature(sig(0..10_000)),
        );
        b.add_source(
            SourceSpec::new("c", Schema::new(["z"]))
                .cardinality(10_000)
                .signature(sig(10_000..20_000)),
        );
        b.add_source(SourceSpec::new("shy", Schema::new(["w"])).cardinality(10_000));
        b.build().unwrap()
    }

    fn eval(u: &Universe, picks: &[u32]) -> f64 {
        let ctx = EvalContext::for_universe(u);
        let sources: BTreeSet<_> = picks.iter().map(|&i| SourceId(i)).collect();
        let schema = MediatedSchema::empty();
        let input = EvalInput {
            universe: u,
            sources: &sources,
            schema: &schema,
            match_quality: 0.0,
        };
        CoverageQef.evaluate(&ctx, &input)
    }

    #[test]
    fn duplicated_source_adds_no_coverage() {
        let u = universe();
        let one = eval(&u, &[0]);
        let dup = eval(&u, &[0, 1]);
        // a and b hold the same tuples, so coverage barely moves.
        assert!((one - dup).abs() < 0.02, "one={one} dup={dup}");
    }

    #[test]
    fn disjoint_source_doubles_coverage() {
        let u = universe();
        let one = eval(&u, &[0]);
        let two = eval(&u, &[0, 2]);
        assert!(two > 1.7 * one, "one={one} two={two}");
    }

    #[test]
    fn full_cooperating_selection_covers_everything() {
        let u = universe();
        let all = eval(&u, &[0, 1, 2]);
        assert!((all - 1.0).abs() < 1e-9, "all={all}");
    }

    #[test]
    fn uncooperative_sources_score_zero() {
        let u = universe();
        assert_eq!(eval(&u, &[3]), 0.0);
    }

    #[test]
    fn no_signatures_anywhere_scores_zero() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("a", Schema::new(["x"])).cardinality(5));
        let u = b.build().unwrap();
        assert_eq!(eval(&u, &[0]), 0.0);
    }

    #[test]
    fn coverage_fraction_matches_qef() {
        let u = universe();
        let sources: BTreeSet<_> = [SourceId(0), SourceId(2)].into();
        let standalone = coverage_fraction(&u, &sources);
        let scored = eval(&u, &[0, 2]);
        assert!((standalone - scored).abs() < 1e-12);
        assert_eq!(coverage_fraction(&u, &BTreeSet::new()), 0.0);
    }

    #[test]
    fn forfeited_coverage_is_monotone_and_clamped() {
        let u = universe();
        let all: BTreeSet<_> = [SourceId(0), SourceId(1), SourceId(2)].into();
        let survivors: BTreeSet<_> = [SourceId(0), SourceId(1)].into();
        let lost = forfeited_coverage(&u, &all, &survivors);
        // Dropping the disjoint source c forfeits roughly half the universe.
        assert!(lost > 0.3, "lost={lost}");
        // Nothing lost when everyone survives.
        assert_eq!(forfeited_coverage(&u, &all, &all), 0.0);
        // Losing everything forfeits the whole selection's coverage.
        let none = BTreeSet::new();
        assert!((forfeited_coverage(&u, &all, &none) - coverage_fraction(&u, &all)).abs() < 1e-12);
    }
}

//! `F_2` — cardinality: the amount of data in the selected sources.
//!
//! `Card(S) = Σ_{s∈S} |s| / Σ_{t∈U} |t|`, i.e. the fraction of the
//! universe's total tuple count held by the selection. Uses the cardinality
//! each source reports; sources that report nothing contribute zero.

use crate::qef::{DeltaClass, EvalContext, EvalInput, Qef};

/// The cardinality QEF (`Card(S)` in the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct CardinalityQef;

impl Qef for CardinalityQef {
    fn name(&self) -> &str {
        "cardinality"
    }

    fn delta_class(&self) -> DeltaClass {
        DeltaClass::SelectedCardinality
    }

    fn evaluate(&self, ctx: &EvalContext, input: &EvalInput<'_>) -> f64 {
        if ctx.universe_cardinality == 0 {
            return 0.0;
        }
        let selected: u64 = input
            .sources
            .iter()
            .map(|&s| input.universe.source(s).cardinality())
            .sum();
        selected as f64 / ctx.universe_cardinality as f64
    }
}

/// Raw (unnormalized) tuple count of a selection — used by the Figure 8
/// experiment, which plots the absolute cardinality of the chosen solution.
pub fn selection_cardinality(input: &EvalInput<'_>) -> u64 {
    input
        .sources
        .iter()
        .map(|&s| input.universe.source(s).cardinality())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::MediatedSchema;
    use crate::ids::SourceId;
    use crate::schema::Schema;
    use crate::source::{SourceSpec, Universe};
    use std::collections::BTreeSet;

    fn universe() -> Universe {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("a", Schema::new(["x"])).cardinality(30));
        b.add_source(SourceSpec::new("b", Schema::new(["y"])).cardinality(70));
        b.build().unwrap()
    }

    fn eval(u: &Universe, picks: &[u32]) -> f64 {
        let ctx = EvalContext::for_universe(u);
        let sources: BTreeSet<_> = picks.iter().map(|&i| SourceId(i)).collect();
        let schema = MediatedSchema::empty();
        let input = EvalInput {
            universe: u,
            sources: &sources,
            schema: &schema,
            match_quality: 0.0,
        };
        CardinalityQef.evaluate(&ctx, &input)
    }

    #[test]
    fn fraction_of_universe_total() {
        let u = universe();
        assert!((eval(&u, &[0]) - 0.3).abs() < 1e-12);
        assert!((eval(&u, &[1]) - 0.7).abs() < 1e-12);
        assert!((eval(&u, &[0, 1]) - 1.0).abs() < 1e-12);
        assert_eq!(eval(&u, &[]), 0.0);
    }

    #[test]
    fn zero_universe_cardinality_scores_zero() {
        let mut b = Universe::builder();
        b.add_source(SourceSpec::new("a", Schema::new(["x"])));
        let u = b.build().unwrap();
        assert_eq!(eval(&u, &[0]), 0.0);
    }

    #[test]
    fn monotone_in_selection() {
        let u = universe();
        assert!(eval(&u, &[0, 1]) >= eval(&u, &[0]));
    }
}

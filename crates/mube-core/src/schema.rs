//! Source schemas.
//!
//! `µBE` treats a source schema as a flat list of named attributes (§2.1 of the
//! paper: relational schemas, 1:1 matching). Richer models — XML, compound
//! elements for n:m matching — can be layered on by flattening compound
//! elements into attributes, as the paper notes.

/// A single named attribute of a source schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    name: String,
}

impl Attribute {
    /// Creates an attribute. Names are normalized to lowercase with
    /// collapsed whitespace, matching how hidden-Web form labels are
    /// extracted in practice.
    pub fn new(name: impl Into<String>) -> Self {
        let raw = name.into();
        let name = raw
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ")
            .to_lowercase();
        Attribute { name }
    }

    /// The normalized attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl<T: Into<String>> From<T> for Attribute {
    fn from(name: T) -> Self {
        Attribute::new(name)
    }
}

/// The schema of one data source: an ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from anything attribute-like.
    pub fn new<I, A>(attrs: I) -> Self
    where
        I: IntoIterator<Item = A>,
        A: Into<Attribute>,
    {
        Schema {
            attrs: attrs.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attribute at `index`, if any.
    pub fn attr(&self, index: usize) -> Option<&Attribute> {
        self.attrs.get(index)
    }

    /// Iterates over `(index, attribute)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Attribute)> {
        self.attrs.iter().enumerate()
    }

    /// All attribute names, in schema order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(Attribute::name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_normalizes_name() {
        let a = Attribute::new("  Event   Name ");
        assert_eq!(a.name(), "event name");
    }

    #[test]
    fn schema_from_strs() {
        let s = Schema::new(["title", "Author", "ISBN"]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.attr(1).unwrap().name(), "author");
        assert!(s.attr(3).is_none());
    }

    #[test]
    fn empty_schema() {
        let s = Schema::default();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn names_iterates_in_order() {
        let s = Schema::new(["b", "a"]);
        let names: Vec<_> = s.names().collect();
        assert_eq!(names, vec!["b", "a"]);
    }
}

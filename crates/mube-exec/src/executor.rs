//! Fan-out query execution with the paper's cost accounting and a
//! resilience layer: retries with backoff, circuit breakers, and graceful
//! degradation.
//!
//! Executing a query over a data-integration solution costs, per the
//! paper's introduction: retrieval from every selected source, mapping into
//! the mediated schema, and inconsistency (duplicate) resolution across
//! sources. The executor models the common fan-out plan: all answerable
//! sources are queried "in parallel" (simulated makespan = the slowest
//! per-source attempt chain), results are mapped and de-duplicated, and
//! every cost is reported.
//!
//! Fetches can fail ([`crate::backend::FetchError`]). Each source gets a
//! [`RetryPolicy`]-governed attempt chain on a virtual [`Clock`] (nothing
//! ever sleeps); an optional [`HealthRegistry`] gates attempts through
//! per-source circuit breakers and records outcomes for the feedback loop.
//! When a source exhausts its retries the query still answers — the
//! [`Degradation`] section of the report quantifies exactly what was lost,
//! using the same PCSA coverage machinery the selection QEFs used to pick
//! the sources in the first place.

use std::collections::BTreeSet;
use std::time::Duration;

use mube_core::ga::MediatedSchema;
use mube_core::ids::SourceId;
use mube_core::jsonw::JsonBuf;
use mube_core::qefs::forfeited_coverage;
use mube_core::solution::Solution;
use mube_core::source::Universe;
use std::sync::Arc;

use crate::backend::{DataSourceBackend, Fetch, FetchError, FetchErrorKind};
use crate::health::HealthRegistry;
use crate::query::Query;
use crate::retry::{Clock, RetryPolicy, VirtualClock};

/// What one source contributed to a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFetch {
    /// The source.
    pub source: SourceId,
    /// Tuples it returned.
    pub fetched: usize,
    /// Of those, tuples no earlier source had returned.
    pub novel: usize,
    /// Fetch attempts spent on this source (1 = first try succeeded).
    pub attempts: u32,
    /// Simulated time spent on this source: fetch latencies of every
    /// attempt plus backoff waits.
    pub cost: Duration,
}

/// A source that exhausted its retries (or was skipped by an open
/// breaker) and contributed nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailedSource {
    /// The source.
    pub source: SourceId,
    /// The final failure mode.
    pub error: FetchErrorKind,
    /// Attempts made (0 when the breaker was open from the start).
    pub attempts: u32,
    /// Simulated time burned before giving up.
    pub spent: Duration,
}

/// A source that exhausted its retries but whose final `Partial`/`Slow`
/// failure carried data the executor salvaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedSource {
    /// The source.
    pub source: SourceId,
    /// The final failure mode the salvage came from.
    pub error: FetchErrorKind,
    /// Attempts made.
    pub attempts: u32,
    /// Tuples salvaged from the final failure.
    pub kept: usize,
}

/// What a degraded execution lost, in the currencies of the paper's
/// data-dependent QEFs: cardinality (F2) and coverage (F3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Degradation {
    /// Sources that contributed nothing, in source order.
    pub failed: Vec<FailedSource>,
    /// Sources that contributed only salvaged partial data, in source
    /// order.
    pub degraded: Vec<DegradedSource>,
    /// Advertised cardinality of the failed sources — the upper bound on
    /// tuples the query could no longer reach.
    pub lost_cardinality: u64,
    /// `lost_cardinality` over the advertised cardinality of the whole
    /// attempted selection (0 when nothing was attempted) — the F2
    /// fraction forfeited.
    pub lost_cardinality_fraction: f64,
    /// Estimated coverage forfeited: `coverage(selected) −
    /// coverage(survivors)` from the PCSA signatures (degraded sources
    /// count as survivors). The F3 fraction forfeited.
    pub lost_coverage_fraction: f64,
}

impl Degradation {
    /// True when every attempted source answered cleanly.
    pub fn is_clean(&self) -> bool {
        self.failed.is_empty() && self.degraded.is_empty()
    }

    /// Sources that contributed nothing, as a set.
    pub fn failed_sources(&self) -> BTreeSet<SourceId> {
        self.failed.iter().map(|f| f.source).collect()
    }
}

/// The result and cost breakdown of one query execution.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The de-duplicated answer.
    pub tuples: BTreeSet<u64>,
    /// Total tuples retrieved across sources (with duplicates).
    pub fetched: usize,
    /// Per-source breakdown of sources that contributed tuples (cleanly or
    /// salvaged), in source order.
    pub per_source: Vec<SourceFetch>,
    /// Sources that could not answer (no attribute in a projected GA).
    pub unanswerable: Vec<SourceId>,
    /// Simulated makespan: the slowest per-source attempt chain (parallel
    /// fan-out).
    pub makespan: Duration,
    /// Simulated total work: the sum of all per-source spent times.
    pub total_cost: Duration,
    /// What the failures cost, if anything.
    pub degradation: Degradation,
}

impl ExecutionReport {
    /// Distinct tuples in the answer.
    pub fn distinct(&self) -> usize {
        self.tuples.len()
    }

    /// Duplicates resolved during mediation (`fetched − distinct`).
    pub fn duplicates(&self) -> usize {
        self.fetched - self.distinct()
    }

    /// Fraction of retrieved tuples that were redundant — the query-time
    /// price of a low-redundancy-score selection.
    pub fn waste(&self) -> f64 {
        if self.fetched == 0 {
            0.0
        } else {
            self.duplicates() as f64 / self.fetched as f64
        }
    }

    /// Renders the report as deterministic JSON: durations as integer
    /// microseconds, sets in source order — the same seed produces a
    /// byte-identical document on every run.
    pub fn to_json(&self, universe: &Universe) -> String {
        let name = |s: SourceId| universe.get(s).map_or("?", |src| src.name());
        let micros = |d: Duration| u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("distinct").uint_value(self.distinct() as u64);
        j.key("fetched").uint_value(self.fetched as u64);
        j.key("duplicates").uint_value(self.duplicates() as u64);
        j.key("makespan_us").uint_value(micros(self.makespan));
        j.key("total_cost_us").uint_value(micros(self.total_cost));
        j.key("per_source").begin_arr();
        for f in &self.per_source {
            j.begin_obj();
            j.key("source").str_value(name(f.source));
            j.key("fetched").uint_value(f.fetched as u64);
            j.key("novel").uint_value(f.novel as u64);
            j.key("attempts").uint_value(u64::from(f.attempts));
            j.key("cost_us").uint_value(micros(f.cost));
            j.end_obj();
        }
        j.end_arr();
        j.key("unanswerable").begin_arr();
        for &s in &self.unanswerable {
            j.str_value(name(s));
        }
        j.end_arr();
        j.key("degradation").begin_obj();
        j.key("clean").bool_value(self.degradation.is_clean());
        j.key("failed").begin_arr();
        for f in &self.degradation.failed {
            j.begin_obj();
            j.key("source").str_value(name(f.source));
            j.key("error").str_value(f.error.as_str());
            j.key("attempts").uint_value(u64::from(f.attempts));
            j.key("spent_us").uint_value(micros(f.spent));
            j.end_obj();
        }
        j.end_arr();
        j.key("degraded").begin_arr();
        for d in &self.degradation.degraded {
            j.begin_obj();
            j.key("source").str_value(name(d.source));
            j.key("error").str_value(d.error.as_str());
            j.key("attempts").uint_value(u64::from(d.attempts));
            j.key("kept").uint_value(d.kept as u64);
            j.end_obj();
        }
        j.end_arr();
        j.key("lost_cardinality")
            .uint_value(self.degradation.lost_cardinality);
        j.key("lost_cardinality_fraction")
            .num_value(self.degradation.lost_cardinality_fraction);
        j.key("lost_coverage_fraction")
            .num_value(self.degradation.lost_coverage_fraction);
        j.end_obj();
        j.end_obj();
        j.finish()
    }
}

/// Outcome of one source's full attempt chain.
enum Outcome {
    Clean(Fetch, u32, Duration),
    Salvaged(Fetch, FetchErrorKind, u32, Duration),
    Failed(FetchErrorKind, u32, Duration),
}

/// Executes queries against a backend.
pub struct Executor<B> {
    universe: Arc<Universe>,
    backend: B,
    policy: RetryPolicy,
    registry: Option<Arc<HealthRegistry>>,
    clock: Arc<dyn Clock>,
}

impl<B: DataSourceBackend> Executor<B> {
    /// Creates an executor with the default retry policy, no health
    /// registry, and a fresh virtual clock.
    pub fn new(universe: Arc<Universe>, backend: B) -> Self {
        Executor {
            universe,
            backend,
            policy: RetryPolicy::default(),
            registry: None,
            clock: Arc::new(VirtualClock::new()),
        }
    }

    /// Replaces the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches a health registry: fetch attempts are gated through its
    /// circuit breakers and every outcome is recorded for the feedback
    /// loop. The registry should share this executor's clock.
    pub fn with_registry(mut self, registry: Arc<HealthRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Replaces the clock (shared with a registry for breaker cooldowns).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// The universe this executor serves.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    /// Borrow of the backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The executor's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Executes a query against an explicit source set (no projection
    /// filtering — every source is considered answerable).
    pub fn execute(&self, sources: &BTreeSet<SourceId>, query: &Query) -> ExecutionReport {
        self.run(sources.iter().copied().collect(), Vec::new(), query)
    }

    /// Executes a query against a `µBE` solution: only sources contributing
    /// an attribute to a projected GA are queried; the rest are reported as
    /// unanswerable (their data cannot be mapped onto the requested part of
    /// the mediated schema).
    pub fn execute_solution(&self, solution: &Solution, query: &Query) -> ExecutionReport {
        let (answerable, unanswerable) = match &query.projection {
            None => (
                solution.sources.iter().copied().collect::<Vec<_>>(),
                Vec::new(),
            ),
            Some(projected) => {
                let spanned = projected_sources(&solution.schema, projected);
                let mut answerable = Vec::new();
                let mut unanswerable = Vec::new();
                for &s in &solution.sources {
                    if spanned.contains(&s) {
                        answerable.push(s);
                    } else {
                        unanswerable.push(s);
                    }
                }
                (answerable, unanswerable)
            }
        };
        self.run(answerable, unanswerable, query)
    }

    /// Runs one source's attempt chain: breaker gate, fetch, backoff,
    /// retry, salvage. All time is simulated and accumulated into the
    /// outcome; the shared clock is only advanced once per query (by the
    /// makespan), in [`Executor::run`].
    fn attempt_chain(&self, source: SourceId, query: &Query) -> Outcome {
        let salt = u64::from(source.0);
        let mut spent = Duration::ZERO;
        let mut failures = 0u32;
        let mut last: Option<FetchError> = None;
        loop {
            if let Some(registry) = &self.registry {
                if !registry.admit(source) {
                    // Breaker open: give up on this source now. If we never
                    // attempted, the failure is attributed to the breaker.
                    if failures == 0 {
                        return Outcome::Failed(FetchErrorKind::BreakerOpen, 0, spent);
                    }
                    break;
                }
            }
            match self.backend.fetch(source, query) {
                Ok(fetch) => {
                    spent += fetch.latency;
                    if let Some(registry) = &self.registry {
                        registry.record_success(source, fetch.latency);
                    }
                    return Outcome::Clean(fetch, failures + 1, spent);
                }
                Err(err) => {
                    spent += err.elapsed();
                    failures += 1;
                    if let Some(registry) = &self.registry {
                        registry.record_failure(source);
                    }
                    last = Some(err);
                    if failures >= self.policy.max_attempts {
                        break;
                    }
                    let backoff = self.policy.backoff(failures, salt);
                    if let Some(deadline) = self.policy.deadline {
                        if spent + backoff >= deadline {
                            break;
                        }
                    }
                    spent += backoff;
                }
            }
        }
        let error = last
            .as_ref()
            .map_or(FetchErrorKind::BreakerOpen, FetchError::kind);
        if self.policy.salvage {
            if let Some(fetch) = last.and_then(FetchError::salvage) {
                return Outcome::Salvaged(fetch, error, failures, spent);
            }
        }
        Outcome::Failed(error, failures, spent)
    }

    fn run(
        &self,
        answerable: Vec<SourceId>,
        unanswerable: Vec<SourceId>,
        query: &Query,
    ) -> ExecutionReport {
        let mut tuples: BTreeSet<u64> = BTreeSet::new();
        let mut per_source = Vec::with_capacity(answerable.len());
        let mut degradation = Degradation::default();
        let mut fetched_total = 0usize;
        let mut makespan = Duration::ZERO;
        let mut total_cost = Duration::ZERO;
        let mut selected: BTreeSet<SourceId> = BTreeSet::new();
        let mut survivors: BTreeSet<SourceId> = BTreeSet::new();
        let mut selected_cardinality = 0u64;
        for source in answerable {
            if self.universe.get(source).is_none() {
                continue;
            }
            selected.insert(source);
            selected_cardinality += self.universe.source(source).cardinality();
            let (fetch, attempts, spent, failure) = match self.attempt_chain(source, query) {
                Outcome::Clean(fetch, attempts, spent) => (Some(fetch), attempts, spent, None),
                Outcome::Salvaged(fetch, error, attempts, spent) => {
                    (Some(fetch), attempts, spent, Some(error))
                }
                Outcome::Failed(error, attempts, spent) => (None, attempts, spent, Some(error)),
            };
            makespan = makespan.max(spent);
            total_cost += spent;
            match fetch {
                Some(fetch) => {
                    survivors.insert(source);
                    let fetched = fetch.tuples.len();
                    let mut novel = 0usize;
                    for id in fetch.tuples {
                        if tuples.insert(id) {
                            novel += 1;
                        }
                    }
                    fetched_total += fetched;
                    per_source.push(SourceFetch {
                        source,
                        fetched,
                        novel,
                        attempts,
                        cost: spent,
                    });
                    if let Some(error) = failure {
                        degradation.degraded.push(DegradedSource {
                            source,
                            error,
                            attempts,
                            kept: fetched,
                        });
                    }
                }
                None => {
                    let error = failure.unwrap_or(FetchErrorKind::Unavailable);
                    degradation.lost_cardinality += self.universe.source(source).cardinality();
                    degradation.failed.push(FailedSource {
                        source,
                        error,
                        attempts,
                        spent,
                    });
                }
            }
        }
        if !degradation.failed.is_empty() {
            if selected_cardinality > 0 {
                degradation.lost_cardinality_fraction =
                    degradation.lost_cardinality as f64 / selected_cardinality as f64;
            }
            degradation.lost_coverage_fraction =
                forfeited_coverage(&self.universe, &selected, &survivors);
        }
        // The query is done: simulated wall-clock moves by the makespan
        // (this is what ages breaker cooldowns between queries).
        self.clock.advance(makespan);
        ExecutionReport {
            tuples,
            fetched: fetched_total,
            per_source,
            unanswerable,
            makespan,
            total_cost,
            degradation,
        }
    }
}

/// Sources with at least one attribute in one of the projected GAs.
fn projected_sources(schema: &MediatedSchema, projected: &BTreeSet<usize>) -> BTreeSet<SourceId> {
    projected
        .iter()
        .filter_map(|&idx| schema.gas().get(idx))
        .flat_map(mube_core::GlobalAttribute::sources)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::WindowBackend;
    use mube_synth::{generate, SynthConfig};

    fn setup() -> (mube_synth::SynthUniverse, Executor<WindowBackend>) {
        let synth = generate(&SynthConfig::small(8), 5);
        let backend = WindowBackend::new(&synth);
        let executor = Executor::new(Arc::clone(&synth.universe), backend);
        (synth, executor)
    }

    #[test]
    fn answer_matches_exact_union() {
        let (synth, executor) = setup();
        let sources: BTreeSet<_> = synth.universe.source_ids().collect();
        let report = executor.execute(&sources, &Query::range(0, u64::MAX));
        assert_eq!(report.distinct() as u64, synth.exact_distinct_universe());
        // Total fetched is the sum of cardinalities.
        assert_eq!(report.fetched as u64, synth.universe.total_cardinality());
        assert_eq!(report.duplicates(), report.fetched - report.distinct());
        // The window backend never fails: execution is clean, one attempt
        // per source.
        assert!(report.degradation.is_clean());
        assert!(report.per_source.iter().all(|f| f.attempts == 1));
    }

    #[test]
    fn novel_counts_sum_to_distinct() {
        let (synth, executor) = setup();
        let sources: BTreeSet<_> = synth.universe.source_ids().take(5).collect();
        let report = executor.execute(&sources, &Query::range(0, 50_000));
        let novel_sum: usize = report.per_source.iter().map(|f| f.novel).sum();
        assert_eq!(novel_sum, report.distinct());
        drop(synth);
    }

    #[test]
    fn makespan_and_total_cost_relate() {
        let (synth, executor) = setup();
        let sources: BTreeSet<_> = synth.universe.source_ids().collect();
        let report = executor.execute(&sources, &Query::range(0, 10_000));
        assert!(report.makespan <= report.total_cost);
        assert!(report.makespan > Duration::ZERO);
        // Parallel fan-out: total work is bounded by sources × makespan.
        assert!(report.total_cost <= report.makespan * sources.len() as u32);
        // The executor's clock advanced by exactly the makespan.
        assert_eq!(executor.clock().now(), report.makespan);
    }

    #[test]
    fn selection_restricts_answers() {
        let (_, executor) = setup();
        let sources: BTreeSet<_> = [SourceId(0), SourceId(1)].into();
        let all = executor.execute(&sources, &Query::range(0, u64::MAX));
        let some = executor.execute(&sources, &Query::range(0, 1_000));
        assert!(some.distinct() <= all.distinct());
        for &id in &some.tuples {
            assert!(id < 1_000);
        }
    }

    #[test]
    fn projection_excludes_unmapped_sources() {
        use mube_core::ga::{GlobalAttribute, MediatedSchema};
        use mube_core::ids::AttrId;
        let (synth, executor) = setup();
        // Build a solution where only sources 0 and 1 participate in GA 0.
        let ga =
            GlobalAttribute::try_new([AttrId::new(SourceId(0), 0), AttrId::new(SourceId(1), 0)])
                .unwrap();
        let solution = mube_core::Solution {
            sources: [SourceId(0), SourceId(1), SourceId(2)].into(),
            schema: MediatedSchema::new([ga]),
            quality: 1.0,
            qef_scores: vec![],
            evaluations: 0,
            timed_out: false,
        };
        let report = executor.execute_solution(&solution, &Query::range(0, u64::MAX).project([0]));
        assert_eq!(report.unanswerable, vec![SourceId(2)]);
        assert_eq!(report.per_source.len(), 2);
        // Without projection, all three answer.
        let full = executor.execute_solution(&solution, &Query::range(0, u64::MAX));
        assert!(full.unanswerable.is_empty());
        assert_eq!(full.per_source.len(), 3);
        drop(synth);
    }

    #[test]
    fn waste_is_zero_for_single_source() {
        let (_, executor) = setup();
        let one: BTreeSet<_> = [SourceId(0)].into();
        let report = executor.execute(&one, &Query::range(0, u64::MAX));
        assert_eq!(report.waste(), 0.0);
        let empty = executor.execute(&one, &Query::range(3, 3));
        assert_eq!(empty.waste(), 0.0);
    }

    #[test]
    fn report_json_is_deterministic_and_wellformed() {
        let (synth, executor) = setup();
        let sources: BTreeSet<_> = synth.universe.source_ids().take(4).collect();
        let report = executor.execute(&sources, &Query::range(0, 20_000));
        let a = report.to_json(&synth.universe);
        let b = report.to_json(&synth.universe);
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"degradation\":{\"clean\":true"));
        assert!(a.contains("\"makespan_us\":"));
    }
}

//! Fan-out query execution with the paper's cost accounting.
//!
//! Executing a query over a data-integration solution costs, per the
//! paper's introduction: retrieval from every selected source, mapping into
//! the mediated schema, and inconsistency (duplicate) resolution across
//! sources. The executor models the common fan-out plan: all answerable
//! sources are queried "in parallel" (simulated makespan = the slowest
//! fetch), results are mapped and de-duplicated, and every cost is
//! reported.

use std::collections::BTreeSet;
use std::time::Duration;

use mube_core::ga::MediatedSchema;
use mube_core::ids::SourceId;
use mube_core::solution::Solution;
use mube_core::source::Universe;
use std::sync::Arc;

use crate::backend::DataSourceBackend;
use crate::query::Query;

/// What one source contributed to a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFetch {
    /// The source.
    pub source: SourceId,
    /// Tuples it returned.
    pub fetched: usize,
    /// Of those, tuples no earlier source had returned.
    pub novel: usize,
    /// Simulated fetch cost.
    pub cost: Duration,
}

/// The result and cost breakdown of one query execution.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The de-duplicated answer.
    pub tuples: BTreeSet<u64>,
    /// Total tuples retrieved across sources (with duplicates).
    pub fetched: usize,
    /// Per-source breakdown, in source order.
    pub per_source: Vec<SourceFetch>,
    /// Sources that could not answer (no attribute in a projected GA).
    pub unanswerable: Vec<SourceId>,
    /// Simulated makespan: the slowest single fetch (parallel fan-out).
    pub makespan: Duration,
    /// Simulated total work: the sum of all fetch costs.
    pub total_cost: Duration,
}

impl ExecutionReport {
    /// Distinct tuples in the answer.
    pub fn distinct(&self) -> usize {
        self.tuples.len()
    }

    /// Duplicates resolved during mediation (`fetched − distinct`).
    pub fn duplicates(&self) -> usize {
        self.fetched - self.distinct()
    }

    /// Fraction of retrieved tuples that were redundant — the query-time
    /// price of a low-redundancy-score selection.
    pub fn waste(&self) -> f64 {
        if self.fetched == 0 {
            0.0
        } else {
            self.duplicates() as f64 / self.fetched as f64
        }
    }
}

/// Executes queries against a backend.
pub struct Executor<B> {
    universe: Arc<Universe>,
    backend: B,
}

impl<B: DataSourceBackend> Executor<B> {
    /// Creates an executor.
    pub fn new(universe: Arc<Universe>, backend: B) -> Self {
        Executor { universe, backend }
    }

    /// Executes a query against an explicit source set (no projection
    /// filtering — every source is considered answerable).
    pub fn execute(&self, sources: &BTreeSet<SourceId>, query: &Query) -> ExecutionReport {
        self.run(sources.iter().copied().collect(), Vec::new(), query)
    }

    /// Executes a query against a `µBE` solution: only sources contributing
    /// an attribute to a projected GA are queried; the rest are reported as
    /// unanswerable (their data cannot be mapped onto the requested part of
    /// the mediated schema).
    pub fn execute_solution(&self, solution: &Solution, query: &Query) -> ExecutionReport {
        let (answerable, unanswerable) = match &query.projection {
            None => (
                solution.sources.iter().copied().collect::<Vec<_>>(),
                Vec::new(),
            ),
            Some(projected) => {
                let spanned = projected_sources(&solution.schema, projected);
                let mut answerable = Vec::new();
                let mut unanswerable = Vec::new();
                for &s in &solution.sources {
                    if spanned.contains(&s) {
                        answerable.push(s);
                    } else {
                        unanswerable.push(s);
                    }
                }
                (answerable, unanswerable)
            }
        };
        self.run(answerable, unanswerable, query)
    }

    fn run(
        &self,
        answerable: Vec<SourceId>,
        unanswerable: Vec<SourceId>,
        query: &Query,
    ) -> ExecutionReport {
        let mut tuples: BTreeSet<u64> = BTreeSet::new();
        let mut per_source = Vec::with_capacity(answerable.len());
        let mut fetched_total = 0usize;
        let mut makespan = Duration::ZERO;
        let mut total_cost = Duration::ZERO;
        for source in answerable {
            if self.universe.get(source).is_none() {
                continue;
            }
            let ids = self.backend.fetch(source, query);
            let fetched = ids.len();
            let mut novel = 0usize;
            for id in ids {
                if tuples.insert(id) {
                    novel += 1;
                }
            }
            let cost = self.backend.cost(source, fetched);
            makespan = makespan.max(cost);
            total_cost += cost;
            fetched_total += fetched;
            per_source.push(SourceFetch {
                source,
                fetched,
                novel,
                cost,
            });
        }
        ExecutionReport {
            tuples,
            fetched: fetched_total,
            per_source,
            unanswerable,
            makespan,
            total_cost,
        }
    }
}

/// Sources with at least one attribute in one of the projected GAs.
fn projected_sources(schema: &MediatedSchema, projected: &BTreeSet<usize>) -> BTreeSet<SourceId> {
    projected
        .iter()
        .filter_map(|&idx| schema.gas().get(idx))
        .flat_map(mube_core::GlobalAttribute::sources)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::WindowBackend;
    use mube_synth::{generate, SynthConfig};

    fn setup() -> (mube_synth::SynthUniverse, Executor<WindowBackend>) {
        let synth = generate(&SynthConfig::small(8), 5);
        let backend = WindowBackend::new(&synth);
        let executor = Executor::new(Arc::clone(&synth.universe), backend);
        (synth, executor)
    }

    #[test]
    fn answer_matches_exact_union() {
        let (synth, executor) = setup();
        let sources: BTreeSet<_> = synth.universe.source_ids().collect();
        let report = executor.execute(&sources, &Query::range(0, u64::MAX));
        assert_eq!(report.distinct() as u64, synth.exact_distinct_universe());
        // Total fetched is the sum of cardinalities.
        assert_eq!(report.fetched as u64, synth.universe.total_cardinality());
        assert_eq!(report.duplicates(), report.fetched - report.distinct());
    }

    #[test]
    fn novel_counts_sum_to_distinct() {
        let (synth, executor) = setup();
        let sources: BTreeSet<_> = synth.universe.source_ids().take(5).collect();
        let report = executor.execute(&sources, &Query::range(0, 50_000));
        let novel_sum: usize = report.per_source.iter().map(|f| f.novel).sum();
        assert_eq!(novel_sum, report.distinct());
        drop(synth);
    }

    #[test]
    fn makespan_and_total_cost_relate() {
        let (synth, executor) = setup();
        let sources: BTreeSet<_> = synth.universe.source_ids().collect();
        let report = executor.execute(&sources, &Query::range(0, 10_000));
        assert!(report.makespan <= report.total_cost);
        assert!(report.makespan > Duration::ZERO);
        // Parallel fan-out beats sequential by roughly the source count.
        assert!(report.total_cost >= report.makespan * (sources.len() as u32 / 2));
    }

    #[test]
    fn selection_restricts_answers() {
        let (_, executor) = setup();
        let sources: BTreeSet<_> = [SourceId(0), SourceId(1)].into();
        let all = executor.execute(&sources, &Query::range(0, u64::MAX));
        let some = executor.execute(&sources, &Query::range(0, 1_000));
        assert!(some.distinct() <= all.distinct());
        for &id in &some.tuples {
            assert!(id < 1_000);
        }
    }

    #[test]
    fn projection_excludes_unmapped_sources() {
        use mube_core::ga::{GlobalAttribute, MediatedSchema};
        use mube_core::ids::AttrId;
        let (synth, executor) = setup();
        // Build a solution where only sources 0 and 1 participate in GA 0.
        let ga =
            GlobalAttribute::try_new([AttrId::new(SourceId(0), 0), AttrId::new(SourceId(1), 0)])
                .unwrap();
        let solution = mube_core::Solution {
            sources: [SourceId(0), SourceId(1), SourceId(2)].into(),
            schema: MediatedSchema::new([ga]),
            quality: 1.0,
            qef_scores: vec![],
            evaluations: 0,
        };
        let report = executor.execute_solution(&solution, &Query::range(0, u64::MAX).project([0]));
        assert_eq!(report.unanswerable, vec![SourceId(2)]);
        assert_eq!(report.per_source.len(), 2);
        // Without projection, all three answer.
        let full = executor.execute_solution(&solution, &Query::range(0, u64::MAX));
        assert!(full.unanswerable.is_empty());
        assert_eq!(full.per_source.len(), 3);
        drop(synth);
    }

    #[test]
    fn waste_is_zero_for_single_source() {
        let (_, executor) = setup();
        let one: BTreeSet<_> = [SourceId(0)].into();
        let report = executor.execute(&one, &Query::range(0, u64::MAX));
        assert_eq!(report.waste(), 0.0);
        let empty = executor.execute(&one, &Query::range(3, 3));
        assert_eq!(empty.waste(), 0.0);
    }
}

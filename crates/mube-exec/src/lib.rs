//! # mube-exec — query execution over a `µBE` solution
//!
//! The paper's introduction motivates *bounded* source selection with the
//! costs a data-integration system pays at query time: "the costs to
//! retrieve data from the source while executing queries, map this data to
//! the global mediated schema, and resolve any inconsistencies with data
//! retrieved from other sources. The more sources we have, the higher these
//! costs become." This crate makes those costs concrete: it executes
//! queries against the sources a [`mube_core::Solution`] selected, maps the
//! answers through the mediated schema, de-duplicates across sources, and
//! accounts for every cost the paper names.
//!
//! Internet-scale sources are also *unreliable* — MTTF and availability are
//! headline per-source characteristics in the paper's §5 — so execution is
//! fault-tolerant end to end:
//!
//! * [`query`] — queries: a projection onto mediated-schema GAs plus a
//!   selection predicate over tuples;
//! * [`backend`] — the fallible source-access abstraction
//!   ([`backend::FetchError`] taxonomy) and the synthetic
//!   [`backend::WindowBackend`] over `mube-synth` tuple windows;
//! * [`fault`] — deterministic, seed-driven fault injection derived from
//!   the sources' advertised characteristics;
//! * [`retry`] — capped exponential backoff with deterministic jitter on a
//!   virtual clock (tests never sleep);
//! * [`health`] — per-source circuit breakers and the measured-
//!   characteristics feedback loop into a refreshed [`mube_core::Universe`];
//! * [`executor`] — fan-out execution with per-source cost accounting and
//!   graceful degradation ([`executor::Degradation`]) when sources fail;
//! * [`probe`] — automatic measurement of latency and availability (§5).
//!
//! # Example
//!
//! ```
//! use std::collections::BTreeSet;
//! use mube_exec::backend::WindowBackend;
//! use mube_exec::executor::Executor;
//! use mube_exec::query::Query;
//! use mube_synth::{generate, SynthConfig};
//!
//! let synth = generate(&SynthConfig::small(10), 1);
//! let backend = WindowBackend::new(&synth);
//! let executor = Executor::new(synth.universe.clone(), backend);
//! let sources: BTreeSet<_> = synth.universe.source_ids().take(4).collect();
//! let report = executor.execute(&sources, &Query::range(0, 5_000));
//! assert_eq!(report.distinct(), report.tuples.len());
//! assert!(report.fetched >= report.distinct());
//! assert!(report.degradation.is_clean());
//! ```

pub mod backend;
pub mod executor;
pub mod fault;
pub mod health;
pub mod probe;
pub mod query;
pub mod retry;

pub use backend::{
    DataSourceBackend, Fetch, FetchError, FetchErrorKind, SpanBackend, WindowBackend,
};
pub use executor::{
    Degradation, DegradedSource, ExecutionReport, Executor, FailedSource, SourceFetch,
};
pub use fault::{hard_failure_sample, injector_from_spec, FaultInjector, FaultProfile, FaultSpec};
pub use health::{BreakerConfig, BreakerState, HealthRegistry, HealthSnapshot, HealthTotals};
pub use probe::{probe_characteristics, probe_latencies, responsiveness};
pub use query::Query;
pub use retry::{Clock, RetryPolicy, VirtualClock};

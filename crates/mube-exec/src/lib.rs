//! # mube-exec — query execution over a `µBE` solution
//!
//! The paper's introduction motivates *bounded* source selection with the
//! costs a data-integration system pays at query time: "the costs to
//! retrieve data from the source while executing queries, map this data to
//! the global mediated schema, and resolve any inconsistencies with data
//! retrieved from other sources. The more sources we have, the higher these
//! costs become." This crate makes those costs concrete: it executes
//! queries against the sources a [`mube_core::Solution`] selected, maps the
//! answers through the mediated schema, de-duplicates across sources, and
//! accounts for every cost the paper names.
//!
//! * [`query`] — queries: a projection onto mediated-schema GAs plus a
//!   selection predicate over tuples;
//! * [`backend`] — the source-access abstraction and the synthetic
//!   [`backend::WindowBackend`] over `mube-synth` tuple windows;
//! * [`executor`] — fan-out execution with per-source cost accounting.
//!
//! # Example
//!
//! ```
//! use std::collections::BTreeSet;
//! use mube_exec::backend::WindowBackend;
//! use mube_exec::executor::Executor;
//! use mube_exec::query::Query;
//! use mube_synth::{generate, SynthConfig};
//!
//! let synth = generate(&SynthConfig::small(10), 1);
//! let backend = WindowBackend::new(&synth);
//! let executor = Executor::new(synth.universe.clone(), backend);
//! let sources: BTreeSet<_> = synth.universe.source_ids().take(4).collect();
//! let report = executor.execute(&sources, &Query::range(0, 5_000));
//! assert_eq!(report.distinct(), report.tuples.len());
//! assert!(report.fetched >= report.distinct());
//! ```

pub mod backend;
pub mod executor;
pub mod probe;
pub mod query;

pub use backend::{DataSourceBackend, WindowBackend};
pub use executor::{ExecutionReport, Executor, SourceFetch};
pub use probe::{probe_latencies, responsiveness};
pub use query::Query;

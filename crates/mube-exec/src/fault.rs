//! Deterministic, seed-driven fault injection.
//!
//! [`FaultInjector`] wraps any [`DataSourceBackend`] and makes a chosen
//! fraction of fetches fail with the taxonomy of
//! [`crate::backend::FetchError`]. Every failure decision is a pure
//! function of `(seed, source, attempt)` — no global RNG state — so a
//! seeded chaos run is exactly reproducible: same seed, same faults, same
//! execution report, byte for byte.
//!
//! Per-source failure probabilities can be supplied directly
//! ([`FaultSpec::Uniform`], [`FaultSpec::Rate`]) or derived from the
//! `availability` / `mttf` / `latency` characteristics the synthetic
//! universe generates ([`FaultSpec::FromCharacteristics`]) — the same
//! numbers the paper's §5 selection QEFs consume, now driving the
//! behavior they were supposed to predict.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use mube_core::error::MubeError;
use mube_core::ids::SourceId;
use mube_core::source::Universe;

use crate::backend::{DataSourceBackend, Fetch, FetchError};
use crate::query::Query;
use crate::retry::{splitmix64, unit_draw};

/// Per-source probabilities for each failure mode of one fetch attempt.
/// The four probabilities must sum to at most 1; the remainder is the
/// probability of a clean fetch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// P(connection refused).
    pub unavailable: f64,
    /// P(attempt times out).
    pub timeout: f64,
    /// P(connection drops mid-transfer; a prefix arrives).
    pub partial: f64,
    /// P(full answer, pathologically late).
    pub slow: f64,
    /// Latency multiplier applied on a `Slow` outcome.
    pub slow_factor: f64,
    /// Simulated time burned by a `Timeout`.
    pub timeout_after: Duration,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            unavailable: 0.0,
            timeout: 0.0,
            partial: 0.0,
            slow: 0.0,
            slow_factor: 10.0,
            timeout_after: Duration::from_secs(2),
        }
    }
}

impl FaultProfile {
    /// A profile that never fails.
    pub fn healthy() -> Self {
        FaultProfile::default()
    }

    /// Total per-attempt failure probability, clamped to `[0, 1]`.
    pub fn failure_rate(&self) -> f64 {
        (self.unavailable + self.timeout + self.partial + self.slow).clamp(0.0, 1.0)
    }
}

/// How per-source fault profiles are chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// A deterministic fraction of sources fails *hard* (always
    /// `Unavailable`, every attempt); everyone else is healthy. The failing
    /// set is the seeded sample — this is the spec the e2e chaos tests use
    /// because the failed-source list is known in advance.
    Rate(f64),
    /// Every source shares one per-attempt profile.
    Uniform(FaultProfile),
    /// Derive each source's profile from its characteristics:
    /// `P(unavailable) = scale · (1 − availability)` (falling back to an
    /// MTTF-based estimate, then to healthy), timeouts/slowness scaled off
    /// the `latency` characteristic.
    FromCharacteristics {
        /// Multiplier on the derived unavailability (1.0 = take the
        /// characteristics at face value).
        scale: f64,
    },
}

impl FaultSpec {
    /// Parses a CLI fault spec.
    ///
    /// Grammar:
    /// * `rate=0.3` — 30% of sources fail hard (deterministic sample);
    /// * `auto` or `auto:2.5` — derive from characteristics, optional scale;
    /// * comma-separated uniform profile fields:
    ///   `unavailable=0.2,timeout=0.1,partial=0.05,slow=0.05,slow-factor=10`.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err("empty fault spec".into());
        }
        if spec == "auto" {
            return Ok(FaultSpec::FromCharacteristics { scale: 1.0 });
        }
        if let Some(scale) = spec.strip_prefix("auto:") {
            let scale: f64 = scale
                .parse()
                .map_err(|_| format!("bad auto scale '{scale}'"))?;
            if scale.is_nan() || scale < 0.0 {
                return Err(format!("auto scale must be ≥ 0, got {scale}"));
            }
            return Ok(FaultSpec::FromCharacteristics { scale });
        }
        let mut profile = FaultProfile::default();
        let mut rate: Option<f64> = None;
        for field in spec.split(',') {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("bad fault field '{field}' (expected key=value)"))?;
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("bad number in fault field '{field}'"))?;
            match key.trim() {
                "rate" => rate = Some(value),
                "unavailable" => profile.unavailable = value,
                "timeout" => profile.timeout = value,
                "partial" => profile.partial = value,
                "slow" => profile.slow = value,
                "slow-factor" | "slow_factor" => profile.slow_factor = value,
                "timeout-ms" | "timeout_ms" => {
                    profile.timeout_after = Duration::from_secs_f64(value.max(0.0) / 1000.0);
                }
                other => return Err(format!("unknown fault field '{other}'")),
            }
        }
        if let Some(rate) = rate {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate must be in [0, 1], got {rate}"));
            }
            return Ok(FaultSpec::Rate(rate));
        }
        let probs = [
            profile.unavailable,
            profile.timeout,
            profile.partial,
            profile.slow,
        ];
        if probs.iter().any(|p| !(0.0..=1.0).contains(p)) || probs.iter().sum::<f64>() > 1.0 + 1e-9
        {
            return Err("fault probabilities must each be in [0, 1] and sum to ≤ 1".into());
        }
        Ok(FaultSpec::Uniform(profile))
    }
}

/// Derives a fault profile from one source's characteristics.
fn profile_from_characteristics(
    availability: Option<f64>,
    mttf_days: Option<f64>,
    scale: f64,
) -> FaultProfile {
    // availability directly gives P(down); MTTF alone gives a rough
    // estimate assuming ~1 day mean downtime (the generator's default).
    let p_down = availability.map(|a| 1.0 - a.clamp(0.0, 1.0)).or_else(|| {
        mttf_days.map(|m| {
            let m = m.max(0.01);
            1.0 / (m + 1.0)
        })
    });
    match p_down {
        None => FaultProfile::healthy(),
        Some(p) => {
            let p = (p * scale).clamp(0.0, 1.0);
            FaultProfile {
                // Split the derived downtime across the taxonomy: mostly
                // hard unavailability, with a tail of degraded modes.
                unavailable: p * 0.6,
                timeout: p * 0.2,
                partial: p * 0.1,
                slow: p * 0.1,
                ..FaultProfile::default()
            }
        }
    }
}

/// A fault-injecting wrapper around a backend.
///
/// Failure decisions are drawn per `(source, attempt)`: the `n`-th fetch
/// of source `s` always behaves the same for a given seed, which is what
/// makes retries meaningful (a retry is a *new* attempt and gets a new
/// draw) while keeping whole runs reproducible.
pub struct FaultInjector<B> {
    inner: B,
    seed: u64,
    profiles: Vec<FaultProfile>,
    hard_fail: BTreeSet<SourceId>,
    attempts: Vec<AtomicU64>,
}

impl<B: DataSourceBackend> FaultInjector<B> {
    /// Wraps `inner`, deriving per-source profiles from `spec`.
    pub fn new(inner: B, universe: &Universe, spec: &FaultSpec, seed: u64) -> Self {
        let n = universe.len();
        let mut profiles = vec![FaultProfile::healthy(); n];
        let mut hard_fail = BTreeSet::new();
        match spec {
            FaultSpec::Rate(rate) => {
                // Deterministic sample: rank sources by a seeded hash and
                // fail the first ⌈rate·n⌉.
                let k = (rate * n as f64).ceil() as usize;
                let mut ranked: Vec<SourceId> = universe.source_ids().collect();
                ranked.sort_by_key(|s| (splitmix64(seed ^ u64::from(s.0)), s.0));
                hard_fail = ranked.into_iter().take(k.min(n)).collect();
            }
            FaultSpec::Uniform(profile) => {
                profiles = vec![*profile; n];
            }
            FaultSpec::FromCharacteristics { scale } => {
                profiles = universe
                    .sources()
                    .map(|s| {
                        profile_from_characteristics(
                            s.characteristic("availability"),
                            s.characteristic("mttf"),
                            *scale,
                        )
                    })
                    .collect();
            }
        }
        let attempts = (0..n).map(|_| AtomicU64::new(0)).collect();
        FaultInjector {
            inner,
            seed,
            profiles,
            hard_fail,
            attempts,
        }
    }

    /// Wraps `inner` with an explicit hard-failing source set (every fetch
    /// of those sources returns `Unavailable`); everyone else is healthy.
    /// Used by tests that need full control over which sources die.
    pub fn with_hard_failures(inner: B, universe: &Universe, failing: BTreeSet<SourceId>) -> Self {
        let n = universe.len();
        FaultInjector {
            inner,
            seed: 0,
            profiles: vec![FaultProfile::healthy(); n],
            hard_fail: failing,
            attempts: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The sources configured to fail *every* attempt (hard failures).
    /// Empty for probabilistic specs.
    pub fn failing_sources(&self) -> &BTreeSet<SourceId> {
        &self.hard_fail
    }

    /// Resets the per-source attempt counters, replaying the exact same
    /// fault sequence on the next execution.
    pub fn reset(&self) {
        for a in &self.attempts {
            a.store(0, Ordering::SeqCst);
        }
    }

    /// Borrow of the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Builds the failure verdict for one attempt, if any.
    fn inject(&self, source: SourceId, attempt: u64, clean: &Fetch) -> Option<FetchError> {
        if self.hard_fail.contains(&source) {
            return Some(FetchError::Unavailable);
        }
        let profile = self.profiles.get(source.index())?;
        let rate = profile.failure_rate();
        if rate <= 0.0 {
            return None;
        }
        let u = unit_draw(self.seed, u64::from(source.0), attempt);
        if u >= rate {
            return None;
        }
        // Map the draw onto the taxonomy by cumulative probability.
        let mut edge = profile.unavailable;
        if u < edge {
            return Some(FetchError::Unavailable);
        }
        edge += profile.timeout;
        if u < edge {
            return Some(FetchError::Timeout {
                after: profile.timeout_after,
            });
        }
        edge += profile.partial;
        if u < edge {
            // A prefix arrives; how much is another deterministic draw.
            let frac = unit_draw(self.seed ^ 0xDEAD, u64::from(source.0), attempt);
            let keep = (clean.tuples.len() as f64 * frac) as usize;
            return Some(FetchError::Partial {
                tuples: clean.tuples[..keep].to_vec(),
                latency: clean.latency.mul_f64(frac.max(0.05)),
            });
        }
        Some(FetchError::Slow {
            tuples: clean.tuples.clone(),
            latency: clean.latency.mul_f64(profile.slow_factor.max(1.0)),
        })
    }
}

impl<B: DataSourceBackend> DataSourceBackend for FaultInjector<B> {
    fn fetch(&self, source: SourceId, query: &Query) -> Result<Fetch, FetchError> {
        let attempt = self
            .attempts
            .get(source.index())
            .map_or(0, |a| a.fetch_add(1, Ordering::SeqCst));
        if self.hard_fail.contains(&source) {
            return Err(FetchError::Unavailable);
        }
        let clean = self.inner.fetch(source, query)?;
        match self.inject(source, attempt, &clean) {
            Some(err) => Err(err),
            None => Ok(clean),
        }
    }

    fn cost(&self, source: SourceId, tuples_fetched: usize) -> Duration {
        self.inner.cost(source, tuples_fetched)
    }
}

/// Derives the hard-failing source set a `rate=` spec would produce —
/// usable without constructing an injector (the CI chaos job and serve
/// endpoint reconcile against this).
pub fn hard_failure_sample(universe: &Universe, rate: f64, seed: u64) -> BTreeSet<SourceId> {
    let n = universe.len();
    let k = (rate.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    let mut ranked: Vec<SourceId> = universe.source_ids().collect();
    ranked.sort_by_key(|s| (splitmix64(seed ^ u64::from(s.0)), s.0));
    ranked.into_iter().take(k.min(n)).collect()
}

/// Convenience: builds an injector for a universe-derived spec string.
pub fn injector_from_spec<B: DataSourceBackend>(
    inner: B,
    universe: &Universe,
    spec: &str,
    seed: u64,
) -> Result<FaultInjector<B>, MubeError> {
    let spec = FaultSpec::parse(spec).map_err(|detail| MubeError::InvalidParameter { detail })?;
    Ok(FaultInjector::new(inner, universe, &spec, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::WindowBackend;
    use mube_synth::{generate, SynthConfig};

    fn synth() -> mube_synth::SynthUniverse {
        generate(&SynthConfig::small(10), 11)
    }

    #[test]
    fn parse_specs() {
        assert_eq!(FaultSpec::parse("rate=0.3").unwrap(), FaultSpec::Rate(0.3));
        assert_eq!(
            FaultSpec::parse("auto").unwrap(),
            FaultSpec::FromCharacteristics { scale: 1.0 }
        );
        assert_eq!(
            FaultSpec::parse("auto:2.5").unwrap(),
            FaultSpec::FromCharacteristics { scale: 2.5 }
        );
        let uniform =
            FaultSpec::parse("unavailable=0.2,timeout=0.1,slow=0.05,slow-factor=8").unwrap();
        match uniform {
            FaultSpec::Uniform(p) => {
                assert_eq!(p.unavailable, 0.2);
                assert_eq!(p.timeout, 0.1);
                assert_eq!(p.slow, 0.05);
                assert_eq!(p.slow_factor, 8.0);
            }
            other => panic!("expected uniform, got {other:?}"),
        }
        assert!(FaultSpec::parse("").is_err());
        assert!(FaultSpec::parse("rate=1.5").is_err());
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("unavailable=0.9,timeout=0.9").is_err());
        assert!(FaultSpec::parse("auto:-1").is_err());
    }

    #[test]
    fn rate_spec_fails_exact_deterministic_fraction() {
        let s = synth();
        let spec = FaultSpec::Rate(0.3);
        let inj = FaultInjector::new(WindowBackend::new(&s), &s.universe, &spec, 77);
        let expected = (0.3f64 * s.universe.len() as f64).ceil() as usize;
        assert_eq!(inj.failing_sources().len(), expected);
        assert_eq!(
            *inj.failing_sources(),
            hard_failure_sample(&s.universe, 0.3, 77)
        );
        // Hard-failing sources fail every attempt; others never fail.
        let q = Query::range(0, 1_000);
        for source in s.universe.source_ids() {
            for _ in 0..3 {
                let r = inj.fetch(source, &q);
                assert_eq!(r.is_err(), inj.failing_sources().contains(&source));
            }
        }
        // A different seed samples a different set (10 choose 3 is large).
        let other = hard_failure_sample(&s.universe, 0.3, 78);
        assert_ne!(*inj.failing_sources(), other);
    }

    #[test]
    fn uniform_spec_is_reproducible_and_attempt_varying() {
        let s = synth();
        let profile = FaultProfile {
            unavailable: 0.25,
            timeout: 0.25,
            partial: 0.2,
            slow: 0.2,
            ..FaultProfile::default()
        };
        let spec = FaultSpec::Uniform(profile);
        let q = Query::range(0, u64::MAX);
        let run = |seed: u64| -> Vec<Option<crate::backend::FetchErrorKind>> {
            let inj = FaultInjector::new(WindowBackend::new(&s), &s.universe, &spec, seed);
            let mut outcomes = Vec::new();
            for source in s.universe.source_ids() {
                for _ in 0..4 {
                    outcomes.push(inj.fetch(source, &q).err().map(|e| e.kind()));
                }
            }
            outcomes
        };
        let a = run(5);
        assert_eq!(a, run(5), "same seed → identical outcome stream");
        assert_ne!(a, run(6), "different seed → different outcomes");
        // With 90% failure mass over 40 attempts, some attempts fail and
        // (statistically certain) at least one succeeds across retries.
        let failures = a.iter().filter(|o| o.is_some()).count();
        assert!(failures > 10, "failures={failures}");
        assert!(failures < 40, "failures={failures}");
    }

    #[test]
    fn reset_replays_the_fault_sequence() {
        let s = synth();
        let spec = FaultSpec::Uniform(FaultProfile {
            timeout: 0.5,
            ..FaultProfile::default()
        });
        let inj = FaultInjector::new(WindowBackend::new(&s), &s.universe, &spec, 9);
        let q = Query::range(0, 100);
        let first: Vec<bool> = (0..5)
            .map(|_| inj.fetch(SourceId(0), &q).is_err())
            .collect();
        inj.reset();
        let second: Vec<bool> = (0..5)
            .map(|_| inj.fetch(SourceId(0), &q).is_err())
            .collect();
        assert_eq!(first, second);
    }

    #[test]
    fn characteristics_drive_failure_rates() {
        let s = synth();
        // Scale up so even high-availability sources fail sometimes.
        let spec = FaultSpec::FromCharacteristics { scale: 1.0 };
        let inj = FaultInjector::new(WindowBackend::new(&s), &s.universe, &spec, 3);
        // Profile rate should track 1 − availability.
        for source in s.universe.sources() {
            let avail = source.characteristic("availability").unwrap();
            let profile = &inj.profiles[source.id().index()];
            assert!((profile.failure_rate() - (1.0 - avail)).abs() < 1e-9);
        }
        // Without any characteristics, profiles are healthy.
        let empty = profile_from_characteristics(None, None, 1.0);
        assert_eq!(empty.failure_rate(), 0.0);
        // MTTF fallback: 9-day MTTF → 10% failure.
        let mttf_only = profile_from_characteristics(None, Some(9.0), 1.0);
        assert!((mttf_only.failure_rate() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn partial_and_slow_carry_salvageable_data() {
        let s = synth();
        let spec = FaultSpec::Uniform(FaultProfile {
            partial: 0.5,
            slow: 0.5,
            slow_factor: 10.0,
            ..FaultProfile::default()
        });
        let inj = FaultInjector::new(WindowBackend::new(&s), &s.universe, &spec, 1);
        let q = Query::range(0, u64::MAX);
        let mut salvaged = 0;
        for source in s.universe.source_ids() {
            let clean_len = inj.inner().fetch(source, &q).unwrap().tuples.len();
            match inj.fetch(source, &q) {
                Err(e) => {
                    let f = e.salvage().expect("partial/slow always salvage");
                    assert!(f.tuples.len() <= clean_len);
                    salvaged += 1;
                }
                Ok(_) => unreachable!("failure mass is 1.0"),
            }
        }
        assert_eq!(salvaged, s.universe.len());
    }
}

//! Automatic measurement of source characteristics (§5).
//!
//! "Some of these characteristics can be measured automatically by `µBE`,
//! such as latency" — this module does exactly that: it issues a small
//! probe query to every source through the backend, records the simulated
//! round-trip cost, and produces a new [`Universe`] whose sources carry the
//! measurement as a `latency` characteristic (milliseconds). A
//! [`mube_core::qefs::CharacteristicQef`] over `latency` can then
//! participate in selection like any user-provided characteristic.
//!
//! Latency is a *cost* (lower is better) while QEF aggregations treat
//! higher as better, so the probe records both the raw milliseconds (for
//! reporting) and a benefit-oriented [`responsiveness`] transform
//! (reciprocal milliseconds) that plugs straight into the standard
//! aggregators.

use std::time::Duration;

use mube_core::error::MubeError;
use mube_core::source::{SourceSpec, Universe};

use crate::backend::DataSourceBackend;
use crate::query::Query;

/// Converts a measured latency into a benefit-oriented characteristic
/// value (bigger = better): `1000 / (1 + latency_ms)`.
pub fn responsiveness(latency: Duration) -> f64 {
    1000.0 / (1.0 + latency.as_secs_f64() * 1000.0)
}

/// Probes every source with a tiny query and rebuilds the universe with
/// two added characteristics per source: `latency` (the measured probe
/// round-trip, in milliseconds) and `responsiveness` (its benefit-oriented
/// transform, usable directly by `CharacteristicQef`).
///
/// Existing characteristics are preserved; existing `latency` /
/// `responsiveness` values are overwritten by the fresh measurements.
pub fn probe_latencies<B: DataSourceBackend>(
    universe: &Universe,
    backend: &B,
) -> Result<Universe, MubeError> {
    // A minimal probe: ask for (at most) a single tuple.
    let probe = Query::range(0, 1);
    let mut builder = Universe::builder();
    for source in universe.sources() {
        let fetched = backend.fetch(source.id(), &probe).len();
        let latency = backend.cost(source.id(), fetched);
        let mut spec = SourceSpec::new(source.name(), source.schema().clone())
            .cardinality(source.cardinality())
            .characteristic("latency", latency.as_secs_f64() * 1000.0)
            .characteristic("responsiveness", responsiveness(latency));
        if let Some(sig) = source.signature() {
            spec = spec.signature(sig.clone());
        }
        for (name, &value) in source.characteristics() {
            if name != "latency" && name != "responsiveness" {
                spec = spec.characteristic(name.clone(), value);
            }
        }
        builder.add_source(spec);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::WindowBackend;
    use mube_synth::{generate, SynthConfig};

    #[test]
    fn probe_adds_latency_characteristics() {
        let synth = generate(&SynthConfig::small(8), 2);
        let backend = WindowBackend::new(&synth);
        let probed = probe_latencies(&synth.universe, &backend).unwrap();
        assert_eq!(probed.len(), synth.universe.len());
        for (orig, new) in synth.universe.sources().zip(probed.sources()) {
            assert_eq!(orig.name(), new.name());
            assert_eq!(orig.schema(), new.schema());
            assert_eq!(orig.cardinality(), new.cardinality());
            assert_eq!(orig.signature(), new.signature());
            // mttf preserved, latency + responsiveness added.
            assert_eq!(orig.characteristic("mttf"), new.characteristic("mttf"));
            let latency = new.characteristic("latency").expect("probed");
            assert!(
                latency >= 50.0,
                "window backend setup is ≥ 50ms, got {latency}"
            );
            assert!(new.characteristic("responsiveness").expect("probed") > 0.0);
        }
    }

    #[test]
    fn responsiveness_is_monotone_decreasing() {
        let fast = responsiveness(Duration::from_millis(10));
        let slow = responsiveness(Duration::from_millis(500));
        assert!(fast > slow);
        assert!(responsiveness(Duration::ZERO) > fast);
    }

    #[test]
    fn probed_universe_is_solvable_with_latency_qef() {
        use mube_core::constraints::Constraints;
        use mube_core::matchop::IdentityMatcher;
        use mube_core::problem::Problem;
        use mube_core::qef::WeightedQefs;
        use mube_core::qefs::{CardinalityQef, CharacteristicQef, MaxAgg};
        use std::sync::Arc;

        let synth = generate(&SynthConfig::small(10), 3);
        let backend = WindowBackend::new(&synth);
        let probed = Arc::new(probe_latencies(&synth.universe, &backend).unwrap());
        let qefs = WeightedQefs::new(vec![
            (Arc::new(CardinalityQef) as Arc<dyn mube_core::Qef>, 0.5),
            (
                Arc::new(CharacteristicQef::new(
                    "responsiveness",
                    "responsiveness",
                    MaxAgg,
                )) as Arc<dyn mube_core::Qef>,
                0.5,
            ),
        ])
        .unwrap();
        let problem = Problem::new(
            probed,
            Arc::new(IdentityMatcher),
            qefs,
            Constraints::with_max_sources(3).beta(1),
        )
        .unwrap();
        let solution = problem.solve(&mube_opt::TabuSearch::default(), 3).unwrap();
        assert!(solution.qef_score("responsiveness").unwrap() > 0.0);
    }
}

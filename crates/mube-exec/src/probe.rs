//! Automatic measurement of source characteristics (§5).
//!
//! "Some of these characteristics can be measured automatically by `µBE`,
//! such as latency" — this module does exactly that: it issues small probe
//! queries to every source through the backend, records the simulated
//! round-trip costs, and produces a new [`Universe`] whose sources carry
//! the measurements as characteristics. A
//! [`mube_core::qefs::CharacteristicQef`] over them can then participate
//! in selection like any user-provided characteristic.
//!
//! Each source is probed `k` times (default 3) and the **median** latency
//! is recorded, so a single slow round-trip doesn't poison the
//! measurement. Probes are fallible like any fetch: the fraction of
//! successful probes is recorded as the source's measured `availability`.
//!
//! Latency is a *cost* (lower is better) while QEF aggregations treat
//! higher as better, so the probe records both the raw milliseconds (for
//! reporting) and a benefit-oriented [`responsiveness`] transform
//! (reciprocal milliseconds) that plugs straight into the standard
//! aggregators. A source whose probes all fail gets `availability` and
//! `responsiveness` of 0 and no `latency` measurement (its advertised
//! value, if any, is preserved).

use std::time::Duration;

use mube_core::error::MubeError;
use mube_core::source::{SourceSpec, Universe};

use crate::backend::DataSourceBackend;
use crate::query::Query;

/// Default probe count per source.
pub const DEFAULT_PROBES: u32 = 3;

/// Converts a measured latency into a benefit-oriented characteristic
/// value (bigger = better): `1000 / (1 + latency_ms)`.
pub fn responsiveness(latency: Duration) -> f64 {
    1000.0 / (1.0 + latency.as_secs_f64() * 1000.0)
}

/// Median of an unsorted latency sample (even counts take the lower
/// middle, keeping the result an actually observed value).
fn median(samples: &mut [Duration]) -> Option<Duration> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_unstable();
    Some(samples[(samples.len() - 1) / 2])
}

/// Probes every source `k` times with a tiny query and rebuilds the
/// universe with measured characteristics per source:
///
/// * `latency` — median successful probe round-trip, in milliseconds;
/// * `responsiveness` — its benefit-oriented transform;
/// * `availability` — fraction of probes that succeeded.
///
/// Existing characteristics are preserved; existing values of the three
/// measured names are overwritten by the fresh measurements (except
/// `latency`, which keeps its advertised value when every probe failed —
/// there is no measurement to replace it with).
pub fn probe_characteristics<B: DataSourceBackend>(
    universe: &Universe,
    backend: &B,
    k: u32,
) -> Result<Universe, MubeError> {
    let k = k.max(1);
    // A minimal probe: ask for (at most) a single tuple.
    let probe = Query::range(0, 1);
    let mut builder = Universe::builder();
    for source in universe.sources() {
        let mut latencies: Vec<Duration> = Vec::with_capacity(k as usize);
        for _ in 0..k {
            if let Ok(fetch) = backend.fetch(source.id(), &probe) {
                // The probe's cost is the setup round-trip for the tiny
                // fetch volume, per the backend's cost model.
                latencies.push(backend.cost(source.id(), fetch.tuples.len()));
            }
        }
        let availability = latencies.len() as f64 / f64::from(k);
        let measured = median(&mut latencies);
        let mut spec = SourceSpec::new(source.name(), source.schema().clone())
            .cardinality(source.cardinality())
            .characteristic("availability", availability)
            .characteristic("responsiveness", measured.map_or(0.0, responsiveness));
        if let Some(latency) = measured {
            spec = spec.characteristic("latency", latency.as_secs_f64() * 1000.0);
        }
        if let Some(sig) = source.signature() {
            spec = spec.signature(sig.clone());
        }
        for (name, &value) in source.characteristics() {
            let measured_name = name == "availability"
                || name == "responsiveness"
                || (name == "latency" && measured.is_some());
            if !measured_name {
                spec = spec.characteristic(name.clone(), value);
            }
        }
        builder.add_source(spec);
    }
    builder.build()
}

/// [`probe_characteristics`] with the default probe count.
pub fn probe_latencies<B: DataSourceBackend>(
    universe: &Universe,
    backend: &B,
) -> Result<Universe, MubeError> {
    probe_characteristics(universe, backend, DEFAULT_PROBES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::WindowBackend;
    use mube_synth::{generate, SynthConfig};

    #[test]
    fn probe_adds_measured_characteristics() {
        let synth = generate(&SynthConfig::small(8), 2);
        let backend = WindowBackend::new(&synth);
        let probed = probe_latencies(&synth.universe, &backend).unwrap();
        assert_eq!(probed.len(), synth.universe.len());
        for (orig, new) in synth.universe.sources().zip(probed.sources()) {
            assert_eq!(orig.name(), new.name());
            assert_eq!(orig.schema(), new.schema());
            assert_eq!(orig.cardinality(), new.cardinality());
            assert_eq!(orig.signature(), new.signature());
            // mttf preserved; latency overwritten by the measurement.
            assert_eq!(orig.characteristic("mttf"), new.characteristic("mttf"));
            let latency = new.characteristic("latency").expect("probed");
            // The backend's setup cost is the source's latency
            // characteristic (generated ≥ 5 ms).
            let advertised = orig.characteristic("latency").unwrap();
            assert!(
                latency >= advertised - 1e-6,
                "measured {latency} < advertised {advertised}"
            );
            assert!(new.characteristic("responsiveness").expect("probed") > 0.0);
            // The window backend never fails: full availability.
            assert_eq!(new.characteristic("availability"), Some(1.0));
        }
    }

    #[test]
    fn median_resists_one_slow_sample() {
        let mut samples = vec![
            Duration::from_millis(10),
            Duration::from_millis(5_000),
            Duration::from_millis(12),
        ];
        assert_eq!(median(&mut samples), Some(Duration::from_millis(12)));
        let mut even = vec![Duration::from_millis(10), Duration::from_millis(20)];
        assert_eq!(median(&mut even), Some(Duration::from_millis(10)));
        let mut empty: Vec<Duration> = Vec::new();
        assert_eq!(median(&mut empty), None);
    }

    #[test]
    fn failing_probes_measure_zero_availability() {
        use crate::fault::{FaultInjector, FaultSpec};
        let synth = generate(&SynthConfig::small(8), 2);
        let injector = FaultInjector::new(
            WindowBackend::new(&synth),
            &synth.universe,
            &FaultSpec::Rate(0.25),
            17,
        );
        let failing = injector.failing_sources().clone();
        assert!(!failing.is_empty());
        let probed = probe_characteristics(&synth.universe, &injector, 3).unwrap();
        for source in probed.sources() {
            let availability = source.characteristic("availability").unwrap();
            if failing.contains(&source.id()) {
                assert_eq!(availability, 0.0);
                assert_eq!(source.characteristic("responsiveness"), Some(0.0));
                // No measurement → advertised latency preserved.
                assert_eq!(
                    source.characteristic("latency"),
                    synth.universe.source(source.id()).characteristic("latency")
                );
            } else {
                assert_eq!(availability, 1.0);
                assert!(source.characteristic("latency").is_some());
            }
        }
    }

    #[test]
    fn responsiveness_is_monotone_decreasing() {
        let fast = responsiveness(Duration::from_millis(10));
        let slow = responsiveness(Duration::from_millis(500));
        assert!(fast > slow);
        assert!(responsiveness(Duration::ZERO) > fast);
    }

    #[test]
    fn probed_universe_is_solvable_with_latency_qef() {
        use mube_core::constraints::Constraints;
        use mube_core::matchop::IdentityMatcher;
        use mube_core::problem::Problem;
        use mube_core::qef::WeightedQefs;
        use mube_core::qefs::{CardinalityQef, CharacteristicQef, MaxAgg};
        use std::sync::Arc;

        let synth = generate(&SynthConfig::small(10), 3);
        let backend = WindowBackend::new(&synth);
        let probed = Arc::new(probe_latencies(&synth.universe, &backend).unwrap());
        let qefs = WeightedQefs::new(vec![
            (Arc::new(CardinalityQef) as Arc<dyn mube_core::Qef>, 0.5),
            (
                Arc::new(CharacteristicQef::new(
                    "responsiveness",
                    "responsiveness",
                    MaxAgg,
                )) as Arc<dyn mube_core::Qef>,
                0.5,
            ),
        ])
        .unwrap();
        let problem = Problem::new(
            probed,
            Arc::new(IdentityMatcher),
            qefs,
            Constraints::with_max_sources(3).beta(1),
        )
        .unwrap();
        let solution = problem.solve(&mube_opt::TabuSearch::default(), 3).unwrap();
        assert!(solution.qef_score("responsiveness").unwrap() > 0.0);
    }
}

//! Queries over the mediated schema.
//!
//! The tuple substrate is deliberately opaque (tuples are 64-bit ids — see
//! DESIGN.md §4), so a query's *selection* is a predicate over tuple ids —
//! we provide id ranges, which compose exactly with the generator's window
//! representation. The *projection* is a set of GA indices of the mediated
//! schema: only sources contributing an attribute to a projected GA can
//! answer (their other attributes are not mapped).

use std::collections::BTreeSet;

/// A query: selection over tuples plus an optional projection onto GAs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// Tuple-id range `[start, end)` the query selects.
    pub start: u64,
    /// Exclusive end of the range.
    pub end: u64,
    /// GA indices projected; `None` = all GAs (every selected source can
    /// answer).
    pub projection: Option<BTreeSet<usize>>,
}

impl Query {
    /// A pure selection query over `[start, end)`.
    pub fn range(start: u64, end: u64) -> Self {
        Query {
            start,
            end,
            projection: None,
        }
    }

    /// Restricts the query to the given GA indices of the mediated schema.
    pub fn project<I: IntoIterator<Item = usize>>(mut self, gas: I) -> Self {
        self.projection = Some(gas.into_iter().collect());
        self
    }

    /// Number of tuple ids the selection spans.
    pub fn span(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// True if the tuple id satisfies the selection.
    #[inline]
    pub fn selects(&self, id: u64) -> bool {
        (self.start..self.end).contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_selects_half_open_interval() {
        let q = Query::range(10, 20);
        assert!(q.selects(10));
        assert!(q.selects(19));
        assert!(!q.selects(20));
        assert!(!q.selects(9));
        assert_eq!(q.span(), 10);
    }

    #[test]
    fn degenerate_range_is_empty() {
        let q = Query::range(5, 5);
        assert_eq!(q.span(), 0);
        assert!(!q.selects(5));
        let q = Query::range(9, 3);
        assert_eq!(q.span(), 0);
    }

    #[test]
    fn projection_builder() {
        let q = Query::range(0, 10).project([0, 2]);
        assert_eq!(q.projection, Some(BTreeSet::from([0, 2])));
    }
}

//! Per-source health tracking: circuit breakers and the measured-
//! characteristics feedback loop.
//!
//! Every fetch outcome feeds a [`HealthRegistry`]. Consecutive failures
//! open a per-source circuit breaker (closed → open → half-open), so a
//! chronically dead source stops consuming retry budget; after a cooldown
//! on the virtual clock, one probe attempt is admitted (half-open) and a
//! success re-closes the breaker.
//!
//! The registry doubles as the paper's feedback loop (§5: characteristics
//! "measured automatically by `µBE`"): [`HealthRegistry::refresh_universe`]
//! writes the *observed* success rate back as each source's `availability`
//! characteristic and the observed mean latency as `latency`, so a
//! re-solve with the standard QEF mix routes around sources that failed in
//! practice, whatever their advertised characteristics claimed.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mube_core::error::MubeError;
use mube_core::ids::SourceId;
use mube_core::source::{SourceSpec, Universe};

use crate::retry::Clock;

/// Circuit-breaker state of one source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: fetches flow normally.
    Closed,
    /// Tripped: fetches are skipped until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe attempt is admitted.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label for reports and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// Virtual time the breaker stays open before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(30),
        }
    }
}

/// Mutable health record of one source.
#[derive(Debug, Clone, Default)]
struct SourceHealth {
    attempts: u64,
    successes: u64,
    consecutive_failures: u32,
    /// Sum of observed fetch latencies (successes only), for the mean.
    latency_sum: Duration,
    state: State,
    /// Half-open probe latch: set when a probe is admitted, cleared when
    /// its outcome is recorded. Guarantees at most one in-flight probe —
    /// without it, concurrent executors racing into a cooled-down breaker
    /// were all admitted (found by the `mube-check` breaker model).
    probe_in_flight: bool,
}

#[derive(Debug, Clone, Default)]
enum State {
    #[default]
    Closed,
    /// Open since `at`; admits a half-open probe once `at + cooldown`
    /// passes on the clock.
    Open {
        at: Duration,
    },
    HalfOpen,
}

/// A read-only snapshot of one source's health.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// The source.
    pub source: SourceId,
    /// Fetch attempts recorded.
    pub attempts: u64,
    /// Of those, successes.
    pub successes: u64,
    /// Observed success rate (1.0 when nothing was attempted —
    /// innocent until proven flaky).
    pub availability: f64,
    /// Mean observed latency over successful fetches.
    pub mean_latency: Duration,
    /// Current breaker state.
    pub state: BreakerState,
}

/// Aggregate counters across all sources (for `/metrics`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthTotals {
    /// Total fetch attempts.
    pub attempts: u64,
    /// Total successes.
    pub successes: u64,
    /// Total failures (`attempts − successes`).
    pub failures: u64,
    /// Sources whose breaker is currently open or half-open.
    pub tripped: u64,
}

/// Records fetch outcomes and gates retries through per-source breakers.
pub struct HealthRegistry {
    config: BreakerConfig,
    clock: Arc<dyn Clock>,
    inner: Mutex<BTreeMap<SourceId, SourceHealth>>,
}

impl HealthRegistry {
    /// A registry on the given clock.
    pub fn new(config: BreakerConfig, clock: Arc<dyn Clock>) -> Self {
        HealthRegistry {
            config,
            clock,
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// Should the executor attempt a fetch of `source` right now?
    ///
    /// Closed admits freely. Open admits (transitioning to half-open) only
    /// once the cooldown has elapsed on the virtual clock. Half-open admits
    /// **at most one** probe at a time: the probe latch set here is cleared
    /// only when [`Self::record_success`]/[`Self::record_failure`] lands,
    /// so concurrent callers racing into a cooled-down breaker cannot all
    /// be admitted as probes.
    pub fn admit(&self, source: SourceId) -> bool {
        let mut inner = self.inner.lock().expect("health lock");
        let health = inner.entry(source).or_default();
        match health.state {
            State::Closed => true,
            State::HalfOpen => {
                if health.probe_in_flight {
                    false
                } else {
                    health.probe_in_flight = true;
                    true
                }
            }
            State::Open { at } => {
                if self.clock.now() >= at + self.config.cooldown {
                    health.state = State::HalfOpen;
                    health.probe_in_flight = true;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful fetch: resets the failure streak and re-closes
    /// the breaker.
    pub fn record_success(&self, source: SourceId, latency: Duration) {
        let mut inner = self.inner.lock().expect("health lock");
        let health = inner.entry(source).or_default();
        health.attempts += 1;
        health.successes += 1;
        health.consecutive_failures = 0;
        health.latency_sum += latency;
        health.state = State::Closed;
        health.probe_in_flight = false;
    }

    /// Records a failed fetch: a half-open probe failure re-opens
    /// immediately; otherwise the breaker trips once the streak reaches the
    /// threshold.
    pub fn record_failure(&self, source: SourceId) {
        let now = self.clock.now();
        let mut inner = self.inner.lock().expect("health lock");
        let health = inner.entry(source).or_default();
        health.attempts += 1;
        health.consecutive_failures += 1;
        health.probe_in_flight = false;
        match health.state {
            State::HalfOpen => health.state = State::Open { at: now },
            State::Open { .. } => {}
            State::Closed => {
                if health.consecutive_failures >= self.config.failure_threshold {
                    health.state = State::Open { at: now };
                }
            }
        }
    }

    /// Current breaker state of a source (closed if never seen).
    pub fn state(&self, source: SourceId) -> BreakerState {
        let inner = self.inner.lock().expect("health lock");
        inner
            .get(&source)
            .map_or(BreakerState::Closed, |h| match h.state {
                State::Closed => BreakerState::Closed,
                State::Open { .. } => BreakerState::Open,
                State::HalfOpen => BreakerState::HalfOpen,
            })
    }

    /// Snapshots of every source that recorded at least one attempt, in
    /// source order.
    pub fn snapshots(&self) -> Vec<HealthSnapshot> {
        let inner = self.inner.lock().expect("health lock");
        inner
            .iter()
            .map(|(&source, h)| HealthSnapshot {
                source,
                attempts: h.attempts,
                successes: h.successes,
                availability: if h.attempts == 0 {
                    1.0
                } else {
                    h.successes as f64 / h.attempts as f64
                },
                mean_latency: if h.successes == 0 {
                    Duration::ZERO
                } else {
                    h.latency_sum / u32::try_from(h.successes).unwrap_or(u32::MAX)
                },
                state: match h.state {
                    State::Closed => BreakerState::Closed,
                    State::Open { .. } => BreakerState::Open,
                    State::HalfOpen => BreakerState::HalfOpen,
                },
            })
            .collect()
    }

    /// Aggregate counters for metrics export.
    pub fn totals(&self) -> HealthTotals {
        let inner = self.inner.lock().expect("health lock");
        let mut t = HealthTotals::default();
        for h in inner.values() {
            t.attempts += h.attempts;
            t.successes += h.successes;
            if !matches!(h.state, State::Closed) {
                t.tripped += 1;
            }
        }
        t.failures = t.attempts - t.successes;
        t
    }

    /// The feedback loop: rebuilds the universe with each source's
    /// *measured* `availability` (observed success rate) and, where
    /// successes were observed, measured mean `latency` — overwriting the
    /// advertised values so a re-solve scores sources by how they actually
    /// behaved. Sources never attempted keep their advertised
    /// characteristics untouched.
    pub fn refresh_universe(&self, universe: &Universe) -> Result<Universe, MubeError> {
        let snapshots: BTreeMap<SourceId, HealthSnapshot> = self
            .snapshots()
            .into_iter()
            .map(|s| (s.source, s))
            .collect();
        let mut builder = Universe::builder();
        for source in universe.sources() {
            let mut spec = SourceSpec::new(source.name(), source.schema().clone())
                .cardinality(source.cardinality());
            if let Some(sig) = source.signature() {
                spec = spec.signature(sig.clone());
            }
            let observed = snapshots.get(&source.id()).filter(|s| s.attempts > 0);
            for (name, &value) in source.characteristics() {
                let overridden = match observed {
                    Some(s) => name == "availability" || (name == "latency" && s.successes > 0),
                    None => false,
                };
                if !overridden {
                    spec = spec.characteristic(name.clone(), value);
                }
            }
            if let Some(s) = observed {
                spec = spec.characteristic("availability", s.availability);
                if s.successes > 0 {
                    spec = spec.characteristic("latency", s.mean_latency.as_secs_f64() * 1000.0);
                }
            }
            builder.add_source(spec);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::VirtualClock;
    use mube_core::schema::Schema;

    fn registry(threshold: u32, cooldown_secs: u64) -> (HealthRegistry, Arc<VirtualClock>) {
        let clock = Arc::new(VirtualClock::new());
        let reg = HealthRegistry::new(
            BreakerConfig {
                failure_threshold: threshold,
                cooldown: Duration::from_secs(cooldown_secs),
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        (reg, clock)
    }

    #[test]
    fn breaker_full_lifecycle() {
        let (reg, clock) = registry(3, 30);
        let s = SourceId(0);
        assert_eq!(reg.state(s), BreakerState::Closed);
        assert!(reg.admit(s));
        // Two failures: still closed.
        reg.record_failure(s);
        reg.record_failure(s);
        assert_eq!(reg.state(s), BreakerState::Closed);
        assert!(reg.admit(s));
        // Third failure trips it.
        reg.record_failure(s);
        assert_eq!(reg.state(s), BreakerState::Open);
        assert!(!reg.admit(s), "open breaker rejects before cooldown");
        // Cooldown elapses on the virtual clock → half-open probe admitted.
        clock.advance(Duration::from_secs(31));
        assert!(reg.admit(s));
        assert_eq!(reg.state(s), BreakerState::HalfOpen);
        // Probe fails → straight back to open, no threshold needed.
        reg.record_failure(s);
        assert_eq!(reg.state(s), BreakerState::Open);
        assert!(!reg.admit(s));
        // Another cooldown, probe succeeds → closed, streak reset.
        clock.advance(Duration::from_secs(31));
        assert!(reg.admit(s));
        reg.record_success(s, Duration::from_millis(20));
        assert_eq!(reg.state(s), BreakerState::Closed);
        // Needs a fresh full streak to trip again.
        reg.record_failure(s);
        reg.record_failure(s);
        assert_eq!(reg.state(s), BreakerState::Closed);
    }

    /// Regression for the half-open double-admit race found by the
    /// `mube-check` breaker model: while one probe is in flight, further
    /// `admit` calls must be rejected until its outcome lands.
    #[test]
    fn half_open_admits_single_probe() {
        let (reg, clock) = registry(3, 30);
        let s = SourceId(0);
        for _ in 0..3 {
            reg.record_failure(s);
        }
        assert_eq!(reg.state(s), BreakerState::Open);
        clock.advance(Duration::from_secs(31));
        // First caller wins the probe slot; racers are rejected.
        assert!(reg.admit(s));
        assert_eq!(reg.state(s), BreakerState::HalfOpen);
        assert!(!reg.admit(s), "second concurrent probe must be rejected");
        assert!(!reg.admit(s));
        // Probe failure clears the latch and re-opens (new cooldown).
        reg.record_failure(s);
        assert_eq!(reg.state(s), BreakerState::Open);
        assert!(!reg.admit(s));
        clock.advance(Duration::from_secs(31));
        assert!(reg.admit(s));
        assert!(!reg.admit(s), "latch re-arms on the next half-open probe");
        // Probe success closes the breaker; admission is free again.
        reg.record_success(s, Duration::from_millis(5));
        assert_eq!(reg.state(s), BreakerState::Closed);
        assert!(reg.admit(s));
        assert!(reg.admit(s), "closed breaker admits concurrent fetches");
    }

    #[test]
    fn snapshots_and_totals_aggregate() {
        let (reg, _clock) = registry(2, 10);
        reg.record_success(SourceId(0), Duration::from_millis(10));
        reg.record_success(SourceId(0), Duration::from_millis(30));
        reg.record_failure(SourceId(1));
        reg.record_failure(SourceId(1));
        let snaps = reg.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].source, SourceId(0));
        assert_eq!(snaps[0].availability, 1.0);
        assert_eq!(snaps[0].mean_latency, Duration::from_millis(20));
        assert_eq!(snaps[1].availability, 0.0);
        assert_eq!(snaps[1].state, BreakerState::Open);
        let totals = reg.totals();
        assert_eq!(totals.attempts, 4);
        assert_eq!(totals.successes, 2);
        assert_eq!(totals.failures, 2);
        assert_eq!(totals.tripped, 1);
    }

    #[test]
    fn refresh_universe_writes_measured_characteristics() {
        let mut b = Universe::builder();
        b.add_source(
            SourceSpec::new("good", Schema::new(["x"]))
                .cardinality(100)
                .characteristic("availability", 0.5)
                .characteristic("mttf", 9.0),
        );
        b.add_source(
            SourceSpec::new("bad", Schema::new(["y"]))
                .cardinality(100)
                .characteristic("availability", 0.99),
        );
        b.add_source(SourceSpec::new("unseen", Schema::new(["z"])).cardinality(100));
        let u = b.build().unwrap();

        let (reg, _clock) = registry(3, 10);
        // "good" succeeds 4/4; "bad" fails 3/4.
        for _ in 0..4 {
            reg.record_success(SourceId(0), Duration::from_millis(40));
        }
        reg.record_success(SourceId(1), Duration::from_millis(10));
        for _ in 0..3 {
            reg.record_failure(SourceId(1));
        }
        let refreshed = reg.refresh_universe(&u).unwrap();
        let good = refreshed.source(SourceId(0));
        assert_eq!(good.characteristic("availability"), Some(1.0));
        assert_eq!(good.characteristic("latency"), Some(40.0));
        // Unrelated characteristics survive.
        assert_eq!(good.characteristic("mttf"), Some(9.0));
        let bad = refreshed.source(SourceId(1));
        assert_eq!(bad.characteristic("availability"), Some(0.25));
        // Never attempted → advertised values untouched (none here).
        let unseen = refreshed.source(SourceId(2));
        assert_eq!(unseen.characteristic("availability"), None);
        // Names, schemas, cardinalities preserved.
        assert_eq!(refreshed.len(), u.len());
        for (orig, new) in u.sources().zip(refreshed.sources()) {
            assert_eq!(orig.name(), new.name());
            assert_eq!(orig.cardinality(), new.cardinality());
        }
    }
}

//! Retry policy: capped exponential backoff with deterministic jitter,
//! driven by an injectable virtual clock so tests (and the simulated
//! executor) never sleep.
//!
//! Everything here is deterministic: the jitter for attempt `n` against a
//! given source is a pure function of `(jitter_seed, salt, n)`, so a seeded
//! chaos run produces byte-identical execution reports on every run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically advancing clock the executor charges simulated time to.
///
/// Production code could back this with `std::time::Instant`; the simulated
/// executor uses [`VirtualClock`], which only moves when told to — backoff
/// waits advance it instead of sleeping.
pub trait Clock: Send + Sync {
    /// Current virtual time since the clock's epoch.
    fn now(&self) -> Duration;
    /// Advances the clock by `d` (a simulated wait or fetch).
    fn advance(&self, d: Duration);
}

/// A clock that only moves when [`Clock::advance`] is called. Nanosecond
/// resolution in a `u64` — ~584 years of simulated time, plenty.
#[derive(Debug, Default)]
pub struct VirtualClock(AtomicU64);

impl VirtualClock {
    /// A clock at epoch zero.
    pub fn new() -> Self {
        VirtualClock(AtomicU64::new(0))
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.0.load(Ordering::SeqCst))
    }

    fn advance(&self, d: Duration) {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.0.fetch_add(nanos, Ordering::SeqCst);
    }
}

/// `splitmix64` — the one-shot mixer used for all deterministic draws in
/// the resilience layer (jitter, fault injection). Small, stable, and
/// well-distributed; seeded draws stay identical across platforms.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from a seed chain.
pub(crate) fn unit_draw(seed: u64, salt: u64, attempt: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(salt ^ splitmix64(attempt)));
    // 53 mantissa bits → uniform in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// When and how often the executor retries a failed fetch.
///
/// Backoff for attempt `n` (0-based count of *completed* failures) is
/// `min(base · multiplier^n, max) · (1 − jitter · u)` with `u` a
/// deterministic uniform draw — "equal jitter downward", so the schedule
/// never exceeds the cap and two sources never thunder in lockstep.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum fetch attempts per source (≥ 1). 1 = no retries.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Exponential growth factor between retries.
    pub multiplier: f64,
    /// Fraction of the backoff randomized away (`0.0` = none, `0.5` =
    /// up to half).
    pub jitter: f64,
    /// Seed for the deterministic jitter draws.
    pub jitter_seed: u64,
    /// Per-query simulated deadline: once a source's accumulated attempt
    /// time would pass it, the executor stops retrying that source.
    pub deadline: Option<Duration>,
    /// Keep the partial data a `Partial`/`Slow` final failure carried
    /// instead of discarding it.
    pub salvage: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            multiplier: 2.0,
            jitter: 0.5,
            jitter_seed: 0,
            deadline: None,
            salvage: true,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never salvages — the pre-resilience
    /// executor behavior.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            multiplier: 1.0,
            jitter: 0.0,
            jitter_seed: 0,
            deadline: None,
            salvage: false,
        }
    }

    /// Sets the jitter seed (carried per-query so reports are reproducible).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Sets the per-query deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The backoff to wait after the `failures`-th failure (1-based) of the
    /// attempt stream identified by `salt` (the executor salts with the
    /// source id).
    pub fn backoff(&self, failures: u32, salt: u64) -> Duration {
        if failures == 0 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self.multiplier.powi(failures as i32 - 1);
        let raw = self.base_backoff.as_secs_f64() * exp;
        let capped = raw.min(self.max_backoff.as_secs_f64());
        let u = unit_draw(self.jitter_seed, salt, u64::from(failures));
        let jittered = capped * (1.0 - self.jitter.clamp(0.0, 1.0) * u);
        Duration::from_secs_f64(jittered.max(0.0))
    }

    /// The full backoff schedule for an attempt stream: one entry per
    /// possible retry (`max_attempts − 1` entries).
    pub fn schedule(&self, salt: u64) -> Vec<Duration> {
        (1..self.max_attempts)
            .map(|f| self.backoff(f, salt))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_only_moves_on_advance() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(250));
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(500));
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            jitter: 0.0,
            max_attempts: 10,
            ..RetryPolicy::default()
        };
        let schedule = policy.schedule(7);
        assert_eq!(schedule.len(), 9);
        assert_eq!(schedule[0], Duration::from_millis(100));
        assert_eq!(schedule[1], Duration::from_millis(200));
        assert_eq!(schedule[2], Duration::from_millis(400));
        // Monotone non-decreasing, capped at max_backoff.
        for w in schedule.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(*schedule.last().unwrap(), Duration::from_secs(5));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default().with_jitter_seed(42);
        let a = policy.schedule(3);
        let b = policy.schedule(3);
        assert_eq!(a, b, "same seed + salt → identical schedule");
        let other_salt = policy.schedule(4);
        assert_ne!(a, other_salt, "different salt → different jitter");
        let other_seed = RetryPolicy::default().with_jitter_seed(43).schedule(3);
        assert_ne!(a, other_seed, "different seed → different jitter");
        // Jitter only shrinks the backoff, never exceeds the un-jittered
        // value and never drops below (1 − jitter) of it.
        let flat = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        for (jittered, full) in a.iter().zip(flat.schedule(3)) {
            assert!(*jittered <= full);
            assert!(jittered.as_secs_f64() >= full.as_secs_f64() * 0.5 - 1e-9);
        }
    }

    #[test]
    fn none_policy_never_backs_off() {
        let policy = RetryPolicy::none();
        assert_eq!(policy.max_attempts, 1);
        assert!(policy.schedule(0).is_empty());
        assert_eq!(policy.backoff(1, 0), Duration::ZERO);
    }

    #[test]
    fn unit_draws_are_uniformish() {
        let mut sum = 0.0;
        for i in 0..1000 {
            let u = unit_draw(1, 2, i);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean={mean}");
    }
}

//! Source access: how the executor actually retrieves tuples.
//!
//! Real `µBE` deployments would talk HTTP to hidden-Web sites; this substrate
//! serves the same interface from the generator's tuple windows, with a
//! simple latency model driven by the sources' characteristics (the paper's
//! "networking and processing costs" of including a source).

use std::time::Duration;

use mube_core::ids::SourceId;
use mube_synth::data_gen::TupleWindows;
use mube_synth::SynthUniverse;

use crate::query::Query;

/// Abstracts tuple retrieval from one source.
pub trait DataSourceBackend: Send + Sync {
    /// Fetches the tuple ids of `source` matching the query's selection.
    fn fetch(&self, source: SourceId, query: &Query) -> Vec<u64>;

    /// Simulated wall-clock cost of that fetch: a per-request setup cost
    /// plus a per-tuple transfer cost.
    fn cost(&self, source: SourceId, tuples_fetched: usize) -> Duration;
}

/// Backend over the synthetic generator's tuple windows.
///
/// Latency model: a fixed per-request setup (default 50 ms — one HTTP
/// round-trip) plus a per-tuple transfer cost (default 2 µs). Sources with
/// a `latency` characteristic (milliseconds) use it as their setup cost
/// instead of the default.
pub struct WindowBackend {
    windows: Vec<TupleWindows>,
    setup_ms: Vec<f64>,
    per_tuple: Duration,
}

/// Default per-request setup when a source reports no `latency`
/// characteristic.
const DEFAULT_SETUP_MS: f64 = 50.0;

impl WindowBackend {
    /// Builds a backend from a generated universe.
    pub fn new(synth: &SynthUniverse) -> Self {
        let setup_ms = synth
            .universe
            .sources()
            .map(|s| s.characteristic("latency").unwrap_or(DEFAULT_SETUP_MS))
            .collect();
        WindowBackend {
            windows: synth.windows.clone(),
            setup_ms,
            per_tuple: Duration::from_micros(2),
        }
    }

    /// Overrides the per-tuple transfer cost.
    pub fn with_per_tuple(mut self, per_tuple: Duration) -> Self {
        self.per_tuple = per_tuple;
        self
    }
}

impl DataSourceBackend for WindowBackend {
    fn fetch(&self, source: SourceId, query: &Query) -> Vec<u64> {
        let Some(windows) = self.windows.get(source.index()) else {
            return Vec::new();
        };
        windows
            .intervals()
            .iter()
            .flat_map(|&(start, len)| {
                let lo = start.max(query.start);
                let hi = (start + len).min(query.end);
                lo..hi.max(lo)
            })
            .collect()
    }

    fn cost(&self, source: SourceId, tuples_fetched: usize) -> Duration {
        let setup = self
            .setup_ms
            .get(source.index())
            .copied()
            .unwrap_or(DEFAULT_SETUP_MS);
        Duration::from_secs_f64(setup / 1000.0) + self.per_tuple * tuples_fetched as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_synth::{generate, SynthConfig};

    fn synth() -> SynthUniverse {
        generate(&SynthConfig::small(6), 3)
    }

    #[test]
    fn fetch_intersects_windows_with_range() {
        let s = synth();
        let backend = WindowBackend::new(&s);
        for source in s.universe.source_ids() {
            let everything = backend.fetch(source, &Query::range(0, u64::MAX));
            assert_eq!(
                everything.len() as u64,
                s.windows[source.index()].cardinality()
            );
            // Fetch of an empty range is empty.
            assert!(backend.fetch(source, &Query::range(5, 5)).is_empty());
            // Fetched ids satisfy the predicate.
            let q = Query::range(100, 2_000);
            for id in backend.fetch(source, &q) {
                assert!(q.selects(id));
            }
        }
    }

    #[test]
    fn unknown_source_fetches_nothing() {
        let s = synth();
        let backend = WindowBackend::new(&s);
        assert!(backend
            .fetch(SourceId(99), &Query::range(0, 100))
            .is_empty());
    }

    #[test]
    fn cost_grows_with_volume() {
        let s = synth();
        let backend = WindowBackend::new(&s);
        let small = backend.cost(SourceId(0), 10);
        let large = backend.cost(SourceId(0), 10_000);
        assert!(large > small);
        // Setup cost dominates tiny fetches.
        assert!(small >= Duration::from_millis(50));
    }

    #[test]
    fn per_tuple_override() {
        let s = synth();
        let backend = WindowBackend::new(&s).with_per_tuple(Duration::from_millis(1));
        let c = backend.cost(SourceId(0), 1000);
        assert!(c >= Duration::from_secs(1));
    }
}

//! Source access: how the executor actually retrieves tuples.
//!
//! Real `µBE` deployments would talk HTTP to hidden-Web sites; this substrate
//! serves the same interface from the generator's tuple windows, with a
//! simple latency model driven by the sources' characteristics (the paper's
//! "networking and processing costs" of including a source).
//!
//! Fetches are *fallible*: Internet-scale sources time out, go down, drop
//! connections mid-transfer, and stall — exactly the behaviors the paper's
//! MTTF/availability characteristics summarize. [`FetchError`] is the
//! taxonomy; the [`crate::fault`] module injects these failures
//! deterministically and [`crate::executor`] retries around them.

use std::time::Duration;

use mube_core::ids::SourceId;
use mube_core::source::Universe;
use mube_synth::data_gen::TupleWindows;
use mube_synth::SynthUniverse;

use crate::query::Query;

/// A successful fetch: the tuples plus the simulated wall-clock the
/// round-trip consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fetch {
    /// Tuple ids matching the query's selection.
    pub tuples: Vec<u64>,
    /// Simulated round-trip latency of this fetch.
    pub latency: Duration,
}

/// Why a fetch failed. `Partial` and `Slow` carry the data that *did*
/// arrive so the executor can salvage it when retries are exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// No answer within the timeout; `after` is the time burned waiting.
    Timeout {
        /// How long the attempt waited before giving up.
        after: Duration,
    },
    /// The source is down (connection refused — fails fast).
    Unavailable,
    /// The connection dropped mid-transfer; a prefix of the answer arrived.
    Partial {
        /// The tuples received before the drop.
        tuples: Vec<u64>,
        /// Time spent before the connection died.
        latency: Duration,
    },
    /// The source answered completely but pathologically slowly (beyond the
    /// per-attempt service objective).
    Slow {
        /// The full answer.
        tuples: Vec<u64>,
        /// The pathological round-trip time.
        latency: Duration,
    },
}

/// The error taxonomy without payloads — for counters, reports, and JSON.
/// `BreakerOpen` marks a source the executor never attempted because its
/// circuit breaker was open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FetchErrorKind {
    /// Attempt exceeded the timeout.
    Timeout,
    /// Source down.
    Unavailable,
    /// Connection dropped mid-transfer.
    Partial,
    /// Answered beyond the service objective.
    Slow,
    /// Skipped: the circuit breaker was open.
    BreakerOpen,
}

impl FetchErrorKind {
    /// Stable lowercase label for reports and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            FetchErrorKind::Timeout => "timeout",
            FetchErrorKind::Unavailable => "unavailable",
            FetchErrorKind::Partial => "partial",
            FetchErrorKind::Slow => "slow",
            FetchErrorKind::BreakerOpen => "breaker_open",
        }
    }
}

impl std::fmt::Display for FetchErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Simulated cost of a refused connection: the peer answers RST quickly.
const UNAVAILABLE_COST: Duration = Duration::from_millis(1);

impl FetchError {
    /// The payload-free taxonomy entry.
    pub fn kind(&self) -> FetchErrorKind {
        match self {
            FetchError::Timeout { .. } => FetchErrorKind::Timeout,
            FetchError::Unavailable => FetchErrorKind::Unavailable,
            FetchError::Partial { .. } => FetchErrorKind::Partial,
            FetchError::Slow { .. } => FetchErrorKind::Slow,
        }
    }

    /// Simulated wall-clock the failed attempt consumed.
    pub fn elapsed(&self) -> Duration {
        match self {
            FetchError::Timeout { after } => *after,
            FetchError::Unavailable => UNAVAILABLE_COST,
            FetchError::Partial { latency, .. } | FetchError::Slow { latency, .. } => *latency,
        }
    }

    /// Data that can still be used when retries are exhausted — graceful
    /// degradation prefers a partial answer to none.
    pub fn salvage(self) -> Option<Fetch> {
        match self {
            FetchError::Partial { tuples, latency } | FetchError::Slow { tuples, latency } => {
                Some(Fetch { tuples, latency })
            }
            FetchError::Timeout { .. } | FetchError::Unavailable => None,
        }
    }
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Timeout { after } => {
                write!(f, "timed out after {:.0} ms", after.as_secs_f64() * 1000.0)
            }
            FetchError::Unavailable => write!(f, "source unavailable"),
            FetchError::Partial { tuples, .. } => {
                write!(f, "connection dropped after {} tuples", tuples.len())
            }
            FetchError::Slow { latency, .. } => write!(
                f,
                "answered in {:.0} ms (beyond the service objective)",
                latency.as_secs_f64() * 1000.0
            ),
        }
    }
}

impl std::error::Error for FetchError {}

/// Abstracts tuple retrieval from one source.
pub trait DataSourceBackend: Send + Sync {
    /// Fetches the tuple ids of `source` matching the query's selection,
    /// or reports how the attempt failed.
    fn fetch(&self, source: SourceId, query: &Query) -> Result<Fetch, FetchError>;

    /// Simulated wall-clock cost of a clean fetch: a per-request setup cost
    /// plus a per-tuple transfer cost.
    fn cost(&self, source: SourceId, tuples_fetched: usize) -> Duration;
}

impl<B: DataSourceBackend + ?Sized> DataSourceBackend for Box<B> {
    fn fetch(&self, source: SourceId, query: &Query) -> Result<Fetch, FetchError> {
        (**self).fetch(source, query)
    }

    fn cost(&self, source: SourceId, tuples_fetched: usize) -> Duration {
        (**self).cost(source, tuples_fetched)
    }
}

impl<B: DataSourceBackend + ?Sized> DataSourceBackend for std::sync::Arc<B> {
    fn fetch(&self, source: SourceId, query: &Query) -> Result<Fetch, FetchError> {
        (**self).fetch(source, query)
    }

    fn cost(&self, source: SourceId, tuples_fetched: usize) -> Duration {
        (**self).cost(source, tuples_fetched)
    }
}

/// Default per-request setup when a source reports no `latency`
/// characteristic.
const DEFAULT_SETUP_MS: f64 = 50.0;

/// Default per-tuple transfer cost.
const DEFAULT_PER_TUPLE: Duration = Duration::from_micros(2);

/// Per-source setup costs read from the `latency` characteristic.
fn setup_costs(universe: &Universe) -> Vec<f64> {
    universe
        .sources()
        .map(|s| s.characteristic("latency").unwrap_or(DEFAULT_SETUP_MS))
        .collect()
}

fn cost_of(setup_ms: &[f64], per_tuple: Duration, source: SourceId, tuples: usize) -> Duration {
    let setup = setup_ms
        .get(source.index())
        .copied()
        .unwrap_or(DEFAULT_SETUP_MS);
    Duration::from_secs_f64(setup / 1000.0) + per_tuple * tuples as u32
}

/// Backend over the synthetic generator's tuple windows.
///
/// Latency model: a fixed per-request setup (default 50 ms — one HTTP
/// round-trip) plus a per-tuple transfer cost (default 2 µs). Sources with
/// a `latency` characteristic (milliseconds) use it as their setup cost
/// instead of the default. Never fails by itself; wrap it in a
/// [`crate::fault::FaultInjector`] to simulate unreliable sources.
pub struct WindowBackend {
    windows: Vec<TupleWindows>,
    setup_ms: Vec<f64>,
    per_tuple: Duration,
}

impl WindowBackend {
    /// Builds a backend from a generated universe.
    pub fn new(synth: &SynthUniverse) -> Self {
        WindowBackend {
            windows: synth.windows.clone(),
            setup_ms: setup_costs(&synth.universe),
            per_tuple: DEFAULT_PER_TUPLE,
        }
    }

    /// Overrides the per-tuple transfer cost.
    pub fn with_per_tuple(mut self, per_tuple: Duration) -> Self {
        self.per_tuple = per_tuple;
        self
    }
}

impl DataSourceBackend for WindowBackend {
    fn fetch(&self, source: SourceId, query: &Query) -> Result<Fetch, FetchError> {
        let tuples: Vec<u64> = self.windows.get(source.index()).map_or_else(Vec::new, |w| {
            w.intervals()
                .iter()
                .flat_map(|&(start, len)| {
                    let lo = start.max(query.start);
                    let hi = (start + len).min(query.end);
                    lo..hi.max(lo)
                })
                .collect()
        });
        let latency = self.cost(source, tuples.len());
        Ok(Fetch { tuples, latency })
    }

    fn cost(&self, source: SourceId, tuples_fetched: usize) -> Duration {
        cost_of(&self.setup_ms, self.per_tuple, source, tuples_fetched)
    }
}

/// Backend for universes loaded from text catalogs, which carry
/// cardinalities but no tuple windows: each source serves one contiguous
/// id span whose start is derived (deterministically) from the source name
/// and whose length is the reported cardinality. Spans from different
/// sources overlap, so de-duplication and coverage accounting stay
/// meaningful. Used by `mube-serve`'s execute endpoint, where only the
/// catalog text is available.
pub struct SpanBackend {
    spans: Vec<(u64, u64)>,
    setup_ms: Vec<f64>,
    per_tuple: Duration,
}

/// FNV-1a, the same stable hash used for deterministic fault draws.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SpanBackend {
    /// Derives spans from the universe's cardinalities. The id space is
    /// twice the total cardinality, so sources overlap roughly half the
    /// time — comparable to the generator's General pool.
    pub fn from_universe(universe: &Universe) -> Self {
        let pool = universe.total_cardinality().max(1) * 2;
        let spans = universe
            .sources()
            .map(|s| (fnv1a(s.name().as_bytes()) % pool, s.cardinality()))
            .collect();
        SpanBackend {
            spans,
            setup_ms: setup_costs(universe),
            per_tuple: DEFAULT_PER_TUPLE,
        }
    }
}

impl DataSourceBackend for SpanBackend {
    fn fetch(&self, source: SourceId, query: &Query) -> Result<Fetch, FetchError> {
        let tuples: Vec<u64> =
            self.spans
                .get(source.index())
                .map_or_else(Vec::new, |&(start, len)| {
                    let lo = start.max(query.start);
                    let hi = (start + len).min(query.end);
                    (lo..hi.max(lo)).collect()
                });
        let latency = self.cost(source, tuples.len());
        Ok(Fetch { tuples, latency })
    }

    fn cost(&self, source: SourceId, tuples_fetched: usize) -> Duration {
        cost_of(&self.setup_ms, self.per_tuple, source, tuples_fetched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mube_synth::{generate, SynthConfig};

    fn synth() -> SynthUniverse {
        generate(&SynthConfig::small(6), 3)
    }

    #[test]
    fn fetch_intersects_windows_with_range() {
        let s = synth();
        let backend = WindowBackend::new(&s);
        for source in s.universe.source_ids() {
            let everything = backend
                .fetch(source, &Query::range(0, u64::MAX))
                .expect("window backend never fails");
            assert_eq!(
                everything.tuples.len() as u64,
                s.windows[source.index()].cardinality()
            );
            // The reported latency is the cost of that volume.
            assert_eq!(
                everything.latency,
                backend.cost(source, everything.tuples.len())
            );
            // Fetch of an empty range is empty.
            assert!(backend
                .fetch(source, &Query::range(5, 5))
                .unwrap()
                .tuples
                .is_empty());
            // Fetched ids satisfy the predicate.
            let q = Query::range(100, 2_000);
            for id in backend.fetch(source, &q).unwrap().tuples {
                assert!(q.selects(id));
            }
        }
    }

    #[test]
    fn unknown_source_fetches_nothing() {
        let s = synth();
        let backend = WindowBackend::new(&s);
        assert!(backend
            .fetch(SourceId(99), &Query::range(0, 100))
            .unwrap()
            .tuples
            .is_empty());
    }

    #[test]
    fn cost_grows_with_volume() {
        let s = synth();
        let backend = WindowBackend::new(&s);
        let small = backend.cost(SourceId(0), 10);
        let large = backend.cost(SourceId(0), 10_000);
        assert!(large > small);
        // Setup cost comes from the source's latency characteristic
        // (generated ≥ 5 ms).
        assert!(small >= Duration::from_millis(5));
        let latency = s.universe.source(SourceId(0)).characteristic("latency");
        let expected = Duration::from_secs_f64(latency.unwrap() / 1000.0);
        assert!(small >= expected);
    }

    #[test]
    fn per_tuple_override() {
        let s = synth();
        let backend = WindowBackend::new(&s).with_per_tuple(Duration::from_millis(1));
        let c = backend.cost(SourceId(0), 1000);
        assert!(c >= Duration::from_secs(1));
    }

    #[test]
    fn fetch_error_accessors() {
        let timeout = FetchError::Timeout {
            after: Duration::from_secs(2),
        };
        assert_eq!(timeout.kind(), FetchErrorKind::Timeout);
        assert_eq!(timeout.elapsed(), Duration::from_secs(2));
        assert!(timeout.salvage().is_none());
        assert!(FetchError::Unavailable.salvage().is_none());
        assert!(FetchError::Unavailable.elapsed() > Duration::ZERO);

        let partial = FetchError::Partial {
            tuples: vec![1, 2, 3],
            latency: Duration::from_millis(10),
        };
        assert_eq!(partial.kind(), FetchErrorKind::Partial);
        assert_eq!(partial.salvage().unwrap().tuples, vec![1, 2, 3]);
        assert_eq!(FetchErrorKind::BreakerOpen.as_str(), "breaker_open");
    }

    #[test]
    fn span_backend_serves_cardinality_spans() {
        let s = synth();
        let backend = SpanBackend::from_universe(&s.universe);
        for source in s.universe.source_ids() {
            let all = backend.fetch(source, &Query::range(0, u64::MAX)).unwrap();
            assert_eq!(
                all.tuples.len() as u64,
                s.universe.source(source).cardinality()
            );
            // Deterministic: same universe, same spans.
            let again = backend.fetch(source, &Query::range(0, u64::MAX)).unwrap();
            assert_eq!(all, again);
        }
    }
}

//! End-to-end pipeline tests: generator → matcher → QEFs → optimizer.

use std::collections::BTreeSet;

use mube_core::constraints::Constraints;
use mube_core::problem::CandidateEval;
use mube_core::SourceId;
use mube_integration::{ci_tabu, Fixture};
use mube_match::similarity::{JaccardNGram, Similarity};

#[test]
fn full_pipeline_produces_valid_solution() {
    let fx = Fixture::new(40, 1);
    let mut session = fx.session(Constraints::with_max_sources(10), 1);
    let solution = session.run().expect("feasible").clone();

    assert!(!solution.sources.is_empty());
    assert!(solution.sources.len() <= 10);
    assert!((0.0..=1.0).contains(&solution.quality));
    // Definition 2 internals: GAs disjoint, every GA valid, every GA's
    // sources are selected.
    assert!(solution.schema.gas_disjoint());
    for ga in solution.schema.gas() {
        for source in ga.sources() {
            assert!(solution.sources.contains(&source));
        }
    }
}

#[test]
fn every_nonuser_ga_meets_theta_and_beta() {
    let fx = Fixture::new(40, 2);
    let constraints = Constraints::with_max_sources(12); // θ=0.75, β=2
    let theta = constraints.theta;
    let beta = constraints.beta;
    let mut session = fx.session(constraints, 2);
    let solution = session.run().expect("feasible").clone();
    let measure = JaccardNGram::trigram();
    let universe = &fx.synth.universe;

    for ga in solution.schema.gas() {
        assert!(ga.len() >= beta, "GA below β: {:?}", ga);
        // Quality of a GA = max pairwise similarity; must meet θ.
        let attrs: Vec<_> = ga.attrs().iter().copied().collect();
        let mut best = 0.0f64;
        for i in 0..attrs.len() {
            for j in (i + 1)..attrs.len() {
                let a = universe.attr_name(attrs[i]).unwrap();
                let b = universe.attr_name(attrs[j]).unwrap();
                best = best.max(measure.similarity(a, b));
            }
        }
        assert!(best >= theta - 1e-9, "GA below θ: best={best} {:?}", ga);
    }
}

#[test]
fn matching_quality_qef_equals_schema_quality() {
    // The matching score reported in the solution must be the same F1 the
    // matcher computes for the schema.
    let fx = Fixture::new(30, 3);
    let mut session = fx.session(Constraints::with_max_sources(8), 3);
    let solution = session.run().expect("feasible").clone();
    let f1 = solution.qef_score("matching").unwrap();
    assert!((0.0..=1.0).contains(&f1));
    // Every surviving GA has quality ≥ θ, so the average must too (no user
    // GAs in this run).
    assert!(f1 >= 0.75 - 1e-9 || solution.schema.is_empty());
}

#[test]
fn evaluate_is_consistent_with_solve() {
    let fx = Fixture::new(30, 4);
    let problem = fx.problem(Constraints::with_max_sources(8));
    let solution = problem.solve(&ci_tabu(), 4).expect("feasible");
    match problem.evaluate(&solution.sources) {
        CandidateEval::Feasible(re) => {
            assert_eq!(re.schema, solution.schema);
            assert!((re.quality - solution.quality).abs() < 1e-12);
        }
        CandidateEval::Infeasible => panic!("returned solution must re-evaluate feasible"),
    }
}

#[test]
fn coverage_tracks_exact_distinct_counts() {
    // The PCSA-based coverage QEF should be close to the exact coverage
    // computed from the generator's tuple windows.
    let fx = Fixture::new(25, 5);
    let mut session = fx.session(Constraints::with_max_sources(8), 5);
    let solution = session.run().expect("feasible").clone();
    let est = solution.qef_score("coverage").unwrap();
    let exact_sel = fx.synth.exact_distinct(solution.sources.iter().copied()) as f64;
    let exact_all = fx.synth.exact_distinct_universe() as f64;
    let exact = exact_sel / exact_all;
    assert!(
        (est - exact).abs() < 0.15,
        "estimated coverage {est:.3} vs exact {exact:.3}"
    );
}

#[test]
fn larger_budget_never_hurts() {
    use mube_opt::TabuSearch;
    let fx = Fixture::new(30, 6);
    let problem = fx.problem(Constraints::with_max_sources(8));
    let small = TabuSearch {
        max_evaluations: 150,
        ..TabuSearch::default()
    };
    let large = TabuSearch {
        max_evaluations: 3_000,
        ..TabuSearch::default()
    };
    let q_small = problem.solve(&small, 6).expect("feasible").quality;
    let q_large = problem.solve(&large, 6).expect("feasible").quality;
    assert!(
        q_large >= q_small - 1e-9,
        "more evaluations must not find worse solutions: {q_small} vs {q_large}"
    );
}

#[test]
fn tabu_matches_exhaustive_on_tiny_universe() {
    // With 8 sources and m=3 there are only 92 candidate subsets; tabu must
    // find the global optimum.
    let fx = Fixture::new(8, 7);
    let problem = fx.problem(Constraints::with_max_sources(3).beta(2));
    let ids: Vec<SourceId> = fx.synth.universe.source_ids().collect();
    let mut best = f64::NEG_INFINITY;
    for i in 0..ids.len() {
        for j in i..ids.len() {
            for k in j..ids.len() {
                let set: BTreeSet<SourceId> = [ids[i], ids[j], ids[k]].into();
                best = best.max(problem.objective(&set));
            }
        }
    }
    let solution = problem.solve(&ci_tabu(), 7).expect("feasible");
    assert!(
        (solution.quality - best).abs() < 1e-9,
        "tabu {} vs exhaustive {}",
        solution.quality,
        best
    );
}

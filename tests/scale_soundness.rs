//! Soundness properties of the `mube-scale` pipeline: the hierarchical
//! two-level solve must track a flat solve on universes small enough to
//! solve flat, and LSH blocking must be byte-deterministic regardless of
//! how many threads compute the sketches.

use std::sync::Arc;

use mube_core::constraints::Constraints;
use mube_core::problem::Problem;
use mube_core::qefs::paper_default_qefs;
use mube_core::source::Universe;
use mube_match::similarity::JaccardNGram;
use mube_match::ClusterMatcher;
use mube_opt::{CancelToken, TabuSearch};
use mube_scale::{block_with_threads, scale_solve, LshConfig, ScaleOptions, SynthStream};
use mube_scale::{SourceRecord, SourceStream as _};
use mube_synth::{StreamingUniverse, SynthConfig};
use proptest::prelude::*;

/// Quality slack allowed between the hierarchical and the flat solve.
/// Overridable for stricter (or more lenient) sweeps without recompiling
/// the expectation into the test.
fn epsilon() -> f64 {
    std::env::var("MUBE_SCALE_EPSILON")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15)
}

fn config() -> ProptestConfig {
    ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    }
}

/// Flat reference: materialize the whole streamed universe and solve one
/// `Problem` with the same solver, seed, and constraints.
fn flat_quality(stream: &SynthStream, m: usize, theta: f64, seed: u64) -> f64 {
    let mut builder = Universe::builder();
    stream.visit(&mut |record| {
        builder.add_source(record.into_spec());
    });
    let universe = Arc::new(builder.build().expect("streamed specs are valid"));
    let matcher = Arc::new(ClusterMatcher::new(
        Arc::clone(&universe),
        JaccardNGram::trigram(),
    ));
    let constraints = Constraints::with_max_sources(m).theta(theta).beta(2);
    let problem = Problem::new(universe, matcher, paper_default_qefs("mttf"), constraints)
        .expect("flat problem");
    problem
        .solve(&TabuSearch::default(), seed)
        .expect("flat solve")
        .quality
}

proptest! {
    #![proptest_config(config())]

    /// With pruning configured to keep every source (`top_k` ≥ n), the
    /// hierarchical solve explores a restriction of the flat search space;
    /// its quality must stay within ε of the flat optimum found under the
    /// same budget.
    #[test]
    fn hierarchical_tracks_flat_within_epsilon(
        seed in 0u64..200,
        n in 30usize..60,
        m in 4usize..7,
    ) {
        let theta = 0.3;
        let stream = SynthStream::new(StreamingUniverse::new(SynthConfig::small(n), seed));
        let flat = flat_quality(&stream, m, theta, seed);

        let mut opts = ScaleOptions::new(m);
        opts.top_k = n; // pruning keeps everything
        opts.theta = theta;
        opts.seed = seed;
        let report = scale_solve(&stream, &opts, &TabuSearch::default(), &CancelToken::none())
            .expect("hierarchical solve");
        prop_assert_eq!(report.survivors, n);

        let eps = epsilon();
        prop_assert!(
            report.solution.quality >= flat - eps,
            "hierarchical {} fell more than ε={} below flat {}",
            report.solution.quality, eps, flat
        );
    }

    /// Blocking is a pure function of (records, config): the clusters are
    /// byte-identical whichever thread count computed the sketches.
    #[test]
    fn lsh_blocking_deterministic_across_thread_counts(
        seed in 0u64..500,
        n in 20usize..120,
        lsh_seed in 0u64..16,
    ) {
        let stream = SynthStream::new(StreamingUniverse::new(SynthConfig::small(n), seed));
        let records: Vec<SourceRecord> = (0..stream.len()).map(|i| stream.get(i)).collect();
        let cfg = LshConfig { seed: lsh_seed, ..LshConfig::default() };
        let reference = block_with_threads(&records, &cfg, 1);
        for threads in [2usize, 4, 8] {
            let other = block_with_threads(&records, &cfg, threads);
            prop_assert_eq!(&reference, &other, "thread count {} diverged", threads);
        }
    }
}

//! Property-based tests over randomly generated universes: the invariants
//! of the full pipeline must hold for *every* seed, not just the fixtures.

use std::collections::BTreeSet;

use mube_core::constraints::Constraints;
use mube_core::matchop::{MatchOperator, MatchOutcome};
use mube_core::SourceId;
use mube_integration::{ci_tabu, Fixture};
use proptest::prelude::*;

/// Reduce the case count: each case generates a universe and solves.
fn config() -> ProptestConfig {
    ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(config())]

    /// Whatever the seed, θ, and m, solutions satisfy the structural
    /// invariants of the optimization problem.
    #[test]
    fn solutions_always_structurally_valid(
        seed in 0u64..1000,
        m in 2usize..10,
        theta in 0.3f64..0.95,
    ) {
        let fx = Fixture::new(20, seed);
        let problem = fx.problem(Constraints::with_max_sources(m).theta(theta));
        let Ok(solution) = problem.solve(&ci_tabu(), seed) else {
            // Feasibility can fail at extreme θ; that is a legal outcome.
            return Ok(());
        };
        prop_assert!(!solution.sources.is_empty());
        prop_assert!(solution.sources.len() <= m);
        prop_assert!((0.0..=1.0).contains(&solution.quality));
        prop_assert!(solution.schema.gas_disjoint());
        for ga in solution.schema.gas() {
            prop_assert!(ga.len() >= 2); // β default
            for s in ga.sources() {
                prop_assert!(solution.sources.contains(&s));
            }
        }
    }

    /// The matcher is a pure function of (universe, S, constraints).
    #[test]
    fn matcher_is_deterministic(seed in 0u64..1000, k in 2usize..8) {
        let fx = Fixture::new(15, seed);
        let sources: BTreeSet<SourceId> =
            fx.synth.universe.source_ids().take(k).collect();
        let constraints = Constraints::with_max_sources(k);
        let a = fx.matcher.match_sources(&fx.synth.universe, &sources, &constraints);
        let b = fx.matcher.match_sources(&fx.synth.universe, &sources, &constraints);
        prop_assert_eq!(a, b);
    }

    /// Matching a subset of sources never invents attributes from outside
    /// the subset.
    #[test]
    fn matcher_stays_within_selection(seed in 0u64..1000, k in 2usize..8) {
        let fx = Fixture::new(15, seed);
        let sources: BTreeSet<SourceId> =
            fx.synth.universe.source_ids().skip(2).take(k).collect();
        let constraints = Constraints::with_max_sources(k);
        if let MatchOutcome::Matched { schema, .. } =
            fx.matcher.match_sources(&fx.synth.universe, &sources, &constraints)
        {
            for ga in schema.gas() {
                for s in ga.sources() {
                    prop_assert!(sources.contains(&s));
                }
            }
        }
    }

    /// PCSA coverage estimates stay within a sane band of exact coverage
    /// on arbitrary subsets of the generated universes.
    #[test]
    fn pcsa_union_estimates_track_exact(seed in 0u64..1000, k in 1usize..10) {
        let fx = Fixture::new(20, seed);
        let picks: Vec<SourceId> = fx.synth.universe.source_ids().take(k).collect();
        let exact = fx.synth.exact_distinct(picks.iter().copied()) as f64;
        let mut union = fx.synth.universe.source(picks[0]).signature().unwrap().clone();
        for &s in &picks[1..] {
            union.union_assign(fx.synth.universe.source(s).signature().unwrap()).unwrap();
        }
        let est = union.estimate();
        // 64 bitmaps → ~10% standard error; allow a generous 45% band so
        // the test is tight enough to catch real bugs but never flaky.
        prop_assert!(exact > 0.0);
        let err = (est - exact).abs() / exact;
        prop_assert!(err < 0.45, "est={est} exact={exact} err={err}");
    }

    /// The generator always produces universes every component accepts.
    #[test]
    fn generated_universes_are_well_formed(seed in 0u64..1000, n in 5usize..30) {
        let fx = Fixture::new(n, seed);
        let u = &fx.synth.universe;
        prop_assert_eq!(u.len(), n);
        for s in u.sources() {
            prop_assert!(!s.schema().is_empty());
            prop_assert!(s.cardinality() > 0);
            prop_assert!(s.cooperates());
            prop_assert!(s.characteristic("mttf").unwrap() >= 1.0);
        }
        prop_assert!(u.total_cardinality() > 0);
    }
}

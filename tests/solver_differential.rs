//! Differential tests for the incremental evaluator: for every QEF in
//! isolation (F1 matching, F2 cardinality, F3 coverage, F4 redundancy, the
//! `wsum` characteristic) and for the paper's full mix, [`DeltaEval`] must
//! agree **bitwise** with the full evaluation path after arbitrary
//! add/drop move sequences. Any divergence is reported together with the
//! exact move sequence that produced it (the vendored proptest does not
//! shrink, so the message carries the full reproduction).

use std::collections::BTreeSet;
use std::sync::Arc;

use mube_core::constraints::Constraints;
use mube_core::delta::{DeltaEval, DeltaMove};
use mube_core::problem::Problem;
use mube_core::qef::{Qef, WeightedQefs};
use mube_core::qefs::{
    paper_default_qefs, CardinalityQef, CharacteristicQef, CoverageQef, MatchingQualityQef,
    RedundancyQef, WeightedSumAgg,
};
use mube_core::{MatchOperator, SourceId};
use mube_integration::Fixture;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// ISSUE acceptance: at least 256 cases per QEF.
fn config() -> ProptestConfig {
    ProptestConfig {
        cases: 256,
        ..ProptestConfig::default()
    }
}

/// A single-QEF problem (weight 1.0) over a small generated universe.
fn single_qef_problem(fx: &Fixture, qef: Arc<dyn Qef>, m: usize, theta: f64) -> Problem {
    let qefs = WeightedQefs::new(vec![(qef, 1.0)]).expect("weight 1.0 is valid");
    Problem::new(
        Arc::clone(&fx.synth.universe),
        Arc::clone(&fx.matcher) as Arc<dyn MatchOperator>,
        qefs,
        Constraints::with_max_sources(m).theta(theta),
    )
    .expect("fixture constraints are valid")
}

/// Derives a pseudo-random move sequence over the universe: starts from a
/// couple of adds, then mixes adds and drops, revisiting sources so both
/// no-ops and genuine state transitions occur.
fn move_sequence(universe_len: usize, moves: usize, seed: u64) -> Vec<DeltaMove> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seq = Vec::with_capacity(moves);
    for i in 0..moves {
        let s = SourceId(rng.random_range(0..universe_len as u32));
        // Front-load adds so drops have something to remove; afterwards
        // pick uniformly, letting drops dirty the PCSA union.
        let add = i < 2 || rng.random_range(0..3u32) < 2;
        seq.push(if add {
            DeltaMove::Add(s)
        } else {
            DeltaMove::Drop(s)
        });
    }
    seq
}

/// Replays `seq` through a [`DeltaEval`], asserting bitwise agreement with
/// the full path after every applied move. Returns an error message naming
/// the divergent step and the whole sequence otherwise.
fn replay_bitwise(problem: &Problem, seq: &[DeltaMove]) -> Result<(), String> {
    let mut delta = DeltaEval::new(problem);
    for (step, &mv) in seq.iter().enumerate() {
        delta.apply(mv);
        let incremental = delta.score();
        let selection: BTreeSet<SourceId> = delta.selection().clone();
        let full = problem.objective(&selection);
        if incremental.to_bits() != full.to_bits() {
            return Err(format!(
                "divergence at step {step} ({mv:?}): delta={incremental:?} ({:#x}) \
                 full={full:?} ({:#x}) selection={selection:?} sequence={seq:?}",
                incremental.to_bits(),
                full.to_bits(),
            ));
        }
        // The escape hatch must reconstruct the exact same state.
        let mut rebuilt = DeltaEval::with_selection(problem, &selection);
        rebuilt.recompute();
        let recomputed = rebuilt.score();
        if recomputed.to_bits() != incremental.to_bits() {
            return Err(format!(
                "recompute() diverged at step {step}: incremental={incremental:?} \
                 recomputed={recomputed:?} selection={selection:?} sequence={seq:?}",
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(config())]

    /// F1: matching quality alone.
    #[test]
    fn f1_matching_is_bitwise_incremental(
        seed in 0u64..10_000,
        mseed in 0u64..10_000,
        m in 3usize..10,
    ) {
        let fx = Fixture::new(10, seed);
        let problem = single_qef_problem(&fx, Arc::new(MatchingQualityQef), m, 0.6);
        let seq = move_sequence(10, 12, mseed);
        if let Err(e) = replay_bitwise(&problem, &seq) {
            return Err(TestCaseError::fail(e));
        }
    }

    /// F2: cardinality alone.
    #[test]
    fn f2_cardinality_is_bitwise_incremental(
        seed in 0u64..10_000,
        mseed in 0u64..10_000,
        m in 3usize..10,
    ) {
        let fx = Fixture::new(10, seed);
        let problem = single_qef_problem(&fx, Arc::new(CardinalityQef), m, 0.6);
        let seq = move_sequence(10, 12, mseed);
        if let Err(e) = replay_bitwise(&problem, &seq) {
            return Err(TestCaseError::fail(e));
        }
    }

    /// F3: PCSA-union coverage alone.
    #[test]
    fn f3_coverage_is_bitwise_incremental(
        seed in 0u64..10_000,
        mseed in 0u64..10_000,
        m in 3usize..10,
    ) {
        let fx = Fixture::new(10, seed);
        let problem = single_qef_problem(&fx, Arc::new(CoverageQef), m, 0.6);
        let seq = move_sequence(10, 12, mseed);
        if let Err(e) = replay_bitwise(&problem, &seq) {
            return Err(TestCaseError::fail(e));
        }
    }

    /// F4: redundancy alone — drops dirty the union, exercising the lazy
    /// rebuild path hardest.
    #[test]
    fn f4_redundancy_is_bitwise_incremental(
        seed in 0u64..10_000,
        mseed in 0u64..10_000,
        m in 3usize..10,
    ) {
        let fx = Fixture::new(10, seed);
        let problem = single_qef_problem(&fx, Arc::new(RedundancyQef), m, 0.6);
        let seq = move_sequence(10, 14, mseed);
        if let Err(e) = replay_bitwise(&problem, &seq) {
            return Err(TestCaseError::fail(e));
        }
    }

    /// The `wsum` characteristic QEF (selection-only direct re-eval path).
    #[test]
    fn wsum_characteristic_is_bitwise_incremental(
        seed in 0u64..10_000,
        mseed in 0u64..10_000,
        m in 3usize..10,
    ) {
        let fx = Fixture::new(10, seed);
        let qef = Arc::new(CharacteristicQef::new("mttf", "mttf", WeightedSumAgg));
        let problem = single_qef_problem(&fx, qef, m, 0.6);
        let seq = move_sequence(10, 12, mseed);
        if let Err(e) = replay_bitwise(&problem, &seq) {
            return Err(TestCaseError::fail(e));
        }
    }

    /// The paper's full weighted mix, with varying θ and m so the
    /// infeasibility boundary (matching failures, |S| > m) is crossed.
    #[test]
    fn paper_mix_is_bitwise_incremental(
        seed in 0u64..10_000,
        mseed in 0u64..10_000,
        m in 2usize..10,
        theta in 0.4f64..0.9,
    ) {
        let fx = Fixture::new(10, seed);
        let problem = Problem::new(
            Arc::clone(&fx.synth.universe),
            Arc::clone(&fx.matcher) as Arc<dyn MatchOperator>,
            paper_default_qefs("mttf"),
            Constraints::with_max_sources(m).theta(theta),
        )
        .expect("fixture constraints are valid");
        let seq = move_sequence(10, 14, mseed);
        if let Err(e) = replay_bitwise(&problem, &seq) {
            return Err(TestCaseError::fail(e));
        }
    }
}

/// `set_selection` must land on the identical state as replaying the moves
/// one at a time — including the recompute shortcut it takes on big jumps.
#[test]
fn set_selection_agrees_with_stepwise_moves() {
    let fx = Fixture::new(12, 99);
    let problem = Problem::new(
        Arc::clone(&fx.synth.universe),
        Arc::clone(&fx.matcher) as Arc<dyn MatchOperator>,
        paper_default_qefs("mttf"),
        Constraints::with_max_sources(8).theta(0.6),
    )
    .expect("valid");
    let mut rng = StdRng::seed_from_u64(5);
    let mut stepped = DeltaEval::new(&problem);
    for _ in 0..40 {
        let target: BTreeSet<SourceId> = (0..12u32)
            .filter(|_| rng.random_range(0..2u32) == 0)
            .map(SourceId)
            .collect();
        let mut jumped = DeltaEval::new(&problem);
        jumped.set_selection(&target);
        stepped.set_selection(&target);
        assert_eq!(
            jumped.score().to_bits(),
            stepped.score().to_bits(),
            "jump vs. step divergence on {target:?}"
        );
        assert_eq!(
            jumped.score().to_bits(),
            problem.objective(&target).to_bits(),
            "delta vs. full divergence on {target:?}"
        );
    }
}

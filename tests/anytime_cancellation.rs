//! Anytime semantics under cancellation, exercised across the whole stack:
//! every solver (and the portfolio) must honour a [`CancelToken`], return a
//! feasible best-so-far incumbent flagged `timed_out`, and that incumbent
//! must survive the post-solve [`SolutionValidator`] like any other
//! solution.

use std::sync::Arc;
use std::time::Duration;

use mube_core::constraints::Constraints;
use mube_core::validate::SolutionValidator;
use mube_integration::{ci_portfolio, ci_tabu, Fixture};
use mube_opt::{
    CancelToken, ManualClock, ParticleSwarm, SimulatedAnnealing, StochasticLocalSearch,
    SubsetObjective, SubsetSolver, TabuSearch,
};

/// A transparent objective: maximize the sum of chosen values. Large enough
/// that an uncancelled run spends far more evaluations than a cancelled one.
struct TopK {
    values: Vec<f64>,
    max: usize,
    required: Vec<usize>,
}

impl TopK {
    fn new(n: usize) -> Self {
        TopK {
            values: (0..n).map(|i| (i as f64 * 17.0) % 101.0).collect(),
            max: 6,
            required: vec![3],
        }
    }
}

impl SubsetObjective for TopK {
    fn universe_size(&self) -> usize {
        self.values.len()
    }
    fn max_selected(&self) -> usize {
        self.max
    }
    fn required(&self) -> Vec<usize> {
        self.required.clone()
    }
    fn score(&self, selected: &[usize]) -> f64 {
        selected.iter().map(|&i| self.values[i]).sum()
    }
}

/// The four paper solvers with a generous budget, so cancellation (not
/// budget exhaustion) is what stops them.
fn solvers() -> Vec<Box<dyn SubsetSolver>> {
    vec![
        Box::new(TabuSearch {
            max_evaluations: 50_000,
            max_iterations: 10_000,
            ..TabuSearch::default()
        }),
        Box::new(StochasticLocalSearch {
            max_evaluations: 50_000,
            ..Default::default()
        }),
        Box::new(SimulatedAnnealing {
            max_evaluations: 50_000,
            ..Default::default()
        }),
        Box::new(ParticleSwarm {
            max_evaluations: 50_000,
            ..Default::default()
        }),
    ]
}

fn assert_feasible(obj: &TopK, result: &mube_opt::SolveResult, name: &str) {
    assert!(
        !result.selected.is_empty(),
        "{name}: anytime guarantee — even instant cancellation yields a non-empty incumbent"
    );
    assert!(
        result.selected.len() <= obj.max,
        "{name}: {:?} exceeds max {}",
        result.selected,
        obj.max
    );
    for req in &obj.required {
        assert!(
            result.selected.contains(req),
            "{name}: dropped required element {req}: {:?}",
            result.selected
        );
    }
    assert!(
        result.selected.windows(2).all(|w| w[0] < w[1]),
        "{name}: selection not sorted/deduped: {:?}",
        result.selected
    );
}

#[test]
fn every_solver_honours_a_precancelled_token() {
    let obj = TopK::new(40);
    for solver in solvers() {
        let name = solver.name().to_string();
        let cancel = CancelToken::new();
        cancel.cancel();
        let cut = solver.solve_cancel(&obj, 7, &cancel);
        assert!(cut.timed_out, "{name}: cancelled run must flag timed_out");
        assert_feasible(&obj, &cut, &name);

        let full = solver.solve_cancel(&obj, 7, &CancelToken::none());
        assert!(!full.timed_out, "{name}: uncancelled run must not time out");
        assert!(
            cut.evaluations < full.evaluations,
            "{name}: cancellation should cut evaluations ({} vs {})",
            cut.evaluations,
            full.evaluations
        );
        assert!(
            cut.score <= full.score,
            "{name}: a cut run cannot beat the full run on a deterministic seed"
        );
    }
}

#[test]
fn deadline_on_a_manual_clock_is_deterministic() {
    let obj = TopK::new(40);
    let solver = TabuSearch {
        max_evaluations: 50_000,
        max_iterations: 10_000,
        ..TabuSearch::default()
    };
    // A deadline already in the past (zero budget on a frozen clock still
    // reading > 0 after advance) cuts the run after its first evaluation.
    let clock = Arc::new(ManualClock::new());
    clock.advance(Duration::from_millis(5));
    let cancel = CancelToken::with_deadline(Arc::clone(&clock) as _, Duration::ZERO);
    let result = solver.solve_cancel(&obj, 11, &cancel);
    assert!(result.timed_out);
    assert_feasible(&obj, &result, "tabu/deadline");

    // A deadline that never arrives (frozen clock, ample budget) changes
    // nothing: byte-identical to an uncancelled run.
    let frozen = CancelToken::with_deadline(Arc::new(ManualClock::new()), Duration::from_secs(60));
    let with_deadline = solver.solve_cancel(&obj, 11, &frozen);
    let without = solver.solve(&obj, 11);
    assert_eq!(with_deadline, without);
    assert!(!with_deadline.timed_out);
}

#[test]
fn portfolio_honours_cancellation_and_stays_feasible() {
    let obj = TopK::new(40);
    let portfolio = ci_portfolio(2, 4);
    let cancel = CancelToken::new();
    cancel.cancel();
    let cut = portfolio.solve_cancel(&obj, 21, &cancel);
    assert!(cut.timed_out, "portfolio must propagate member timeouts");
    assert_feasible(&obj, &cut, "portfolio");

    let full = portfolio.solve_cancel(&obj, 21, &CancelToken::none());
    assert!(!full.timed_out);
    assert!(cut.evaluations < full.evaluations);
}

#[test]
fn deadline_cut_problem_solve_passes_the_validator() {
    let fx = Fixture::new(12, 2007);
    let problem = fx.problem(Constraints::with_max_sources(4));
    let cancel = CancelToken::new();
    cancel.cancel();
    let solution = problem
        .solve_cancel(&ci_tabu(), 7, &cancel)
        .expect("cancelled solve still returns a solution");
    assert!(solution.timed_out, "solution must carry the timeout flag");
    assert!(!solution.sources.is_empty());
    let validator = SolutionValidator::for_problem(&problem);
    assert_eq!(
        validator.check(&solution),
        Vec::new(),
        "deadline-cut solutions must satisfy every structural invariant"
    );
}

#[test]
fn session_run_cancel_records_a_valid_iteration() {
    let fx = Fixture::new(12, 2007);
    let mut session = fx.session(Constraints::with_max_sources(4), 7);
    let cancel = CancelToken::new();
    cancel.cancel();
    let quality = {
        let solution = session.run_cancel(&cancel).expect("anytime solve");
        assert!(solution.timed_out);
        assert!(!solution.sources.is_empty());
        solution.quality
    };
    assert!(quality.is_finite());
    // The cut iteration is recorded like any other; the next (uncancelled)
    // iteration proceeds normally from it.
    assert_eq!(session.history().len(), 1);
    let next = session.run_cancel(&CancelToken::none()).expect("solve");
    assert!(!next.timed_out);
    assert_eq!(session.history().len(), 2);
}

//! Property fuzzing of the two wire decoders in `mube-serve`: the HTTP/1.1
//! request parser and the replication frame reader. Both sit on untrusted
//! network input, so the contracts are strict — never panic, never accept
//! corrupt input, and for the frame reader: decode the good prefix of a
//! torn or corrupted stream, then stop cleanly.

use std::io::Cursor;

use mube_serve::persist::encode_event_frame;
use mube_serve::repl::{encode_heartbeat, encode_reset, FrameReader, TAG_HEARTBEAT, TAG_RESET};
use mube_serve::{http, Event};
use proptest::prelude::*;

const MAX_BODY: usize = 1 << 20;

fn config() -> ProptestConfig {
    ProptestConfig {
        cases: 192,
        ..ProptestConfig::default()
    }
}

/// Renders one replication frame from a `(selector, lsn, digest, text)`
/// tuple: event, heartbeat, or reset.
fn render_frame(selector: u8, lsn: u64, digest: u64, text: &str) -> Vec<u8> {
    match selector % 3 {
        0 => {
            let id = lsn % 1000 + 1;
            encode_event_frame(
                id,
                &Event::CatalogCreate {
                    id,
                    text: text.to_string(),
                },
            )
        }
        1 => encode_heartbeat(lsn, digest),
        _ => encode_reset(),
    }
}

/// A stream of well-formed replication frames (events + control frames).
fn frame_stream() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec((0u8..3, 1u64..1000, any::<u64>(), "[ -~]{0,40}"), 1..8).prop_map(
        |specs| {
            specs
                .iter()
                .flat_map(|(sel, lsn, digest, text)| render_frame(*sel, *lsn, *digest, text))
                .collect()
        },
    )
}

/// Decodes everything the reader can produce; panics bubble up to proptest.
fn drain(reader: &mut FrameReader) -> (usize, bool) {
    let mut decoded = 0;
    loop {
        match reader.next_frame() {
            Ok(Some(_)) => decoded += 1,
            Ok(None) => return (decoded, false),
            Err(_) => return (decoded, true),
        }
    }
}

proptest! {
    #![proptest_config(config())]

    /// The HTTP parser never panics on arbitrary bytes: every input is
    /// either a parsed request or a typed `HttpError` that maps to a 4xx.
    #[test]
    fn http_parser_never_panics(input in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = http::read_request(&mut Cursor::new(input), MAX_BODY);
    }

    /// Hostile-but-structured request heads also never panic, and header
    /// floods are rejected rather than accepted.
    #[test]
    fn http_parser_survives_request_soup(
        method in "[A-Z]{0,10}",
        path in "[ -~]{0,40}",
        headers in proptest::collection::vec(("[a-zA-Z-]{1,20}", "[ -~]{0,40}"), 0..80),
        body in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // The parser stores up to 64 headers and rejects the 65th.
        let flood = headers.len() > 64;
        let mut raw = format!("{method} {path} HTTP/1.1\r\n");
        for (name, value) in &headers {
            raw.push_str(&format!("{name}: {value}\r\n"));
        }
        raw.push_str("\r\n");
        let mut bytes = raw.into_bytes();
        bytes.extend_from_slice(&body);
        let parsed = http::read_request(&mut Cursor::new(bytes), MAX_BODY);
        if flood {
            prop_assert!(parsed.is_err(), "header floods must be rejected");
        }
    }

    /// A mutated byte inside a valid request never causes a panic.
    #[test]
    fn http_parser_survives_single_byte_mutations(
        at in any::<u64>(),
        byte in any::<u8>(),
    ) {
        let mut raw = b"POST /sessions HTTP/1.1\r\nhost: a\r\ncontent-length: 2\r\n\r\n{}".to_vec();
        let at = (at as usize) % raw.len();
        raw[at] = byte;
        let _ = http::read_request(&mut Cursor::new(raw), MAX_BODY);
    }

    /// A torn stream (cut at any offset) decodes exactly the frames whose
    /// bytes fully arrived, then reports "need more" — never an error,
    /// never a partial frame.
    #[test]
    fn frame_reader_decodes_the_good_prefix_of_a_torn_stream(
        stream in frame_stream(),
        cut in any::<u64>(),
    ) {
        let cut = (cut as usize) % (stream.len() + 1);
        let mut whole = FrameReader::new();
        whole.feed(&stream);
        let (total, err) = drain(&mut whole);
        prop_assert!(!err, "well-formed stream must decode cleanly");

        let mut torn = FrameReader::new();
        torn.feed(&stream[..cut]);
        let (decoded, err) = drain(&mut torn);
        prop_assert!(!err, "a torn tail is incomplete, not corrupt");
        prop_assert!(decoded <= total);
        if cut == stream.len() {
            prop_assert_eq!(decoded, total);
        }
    }

    /// A flipped byte is either detected (CRC/length error) or lands in a
    /// frame after the good prefix — the reader never panics and never
    /// yields more frames than the stream held.
    #[test]
    fn frame_reader_rejects_or_bounds_corruption(
        stream in frame_stream(),
        at in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut corrupt = stream.clone();
        let at = (at as usize) % corrupt.len();
        corrupt[at] ^= flip;

        let mut whole = FrameReader::new();
        whole.feed(&stream);
        let (total, _) = drain(&mut whole);

        let mut reader = FrameReader::new();
        reader.feed(&corrupt);
        let (decoded, _) = drain(&mut reader);
        prop_assert!(decoded <= total, "corruption must never invent frames");
    }

    /// Frames delivered one byte at a time decode identically to frames
    /// delivered in one burst.
    #[test]
    fn frame_reader_is_chunking_invariant(stream in frame_stream()) {
        let mut whole = FrameReader::new();
        whole.feed(&stream);
        let (total, err) = drain(&mut whole);
        prop_assert!(!err);

        let mut dribble = FrameReader::new();
        let mut decoded = 0;
        for byte in &stream {
            dribble.feed(std::slice::from_ref(byte));
            while let Ok(Some(_)) = dribble.next_frame() {
                decoded += 1;
            }
        }
        prop_assert_eq!(decoded, total);
    }
}

/// Control frames round-trip through the reader with their tags intact.
#[test]
fn control_frames_round_trip() {
    let mut reader = FrameReader::new();
    reader.feed(&encode_heartbeat(42, 0xdead_beef));
    reader.feed(&encode_reset());
    let hb = reader.next_frame().unwrap().expect("heartbeat");
    assert_eq!((hb.lsn, hb.tag), (42, TAG_HEARTBEAT));
    let reset = reader.next_frame().unwrap().expect("reset");
    assert_eq!((reset.lsn, reset.tag), (0, TAG_RESET));
    assert!(reader.next_frame().unwrap().is_none());
}

//! Shared fixtures for the cross-crate integration tests.

use std::sync::Arc;

use mube_core::constraints::Constraints;
use mube_core::problem::Problem;
use mube_core::qefs::paper_default_qefs;
use mube_core::session::Session;
use mube_match::similarity::JaccardNGram;
use mube_match::ClusterMatcher;
use mube_opt::{
    ParticleSwarm, Portfolio, SimulatedAnnealing, StochasticLocalSearch, SubsetSolver, TabuSearch,
};
use mube_synth::{generate, SynthConfig, SynthUniverse};

/// A generated universe, the matcher over it, and the generator's output.
pub struct Fixture {
    /// The synthetic universe with ground truth.
    pub synth: SynthUniverse,
    /// The clustering matcher.
    pub matcher: Arc<ClusterMatcher>,
}

impl Fixture {
    /// Generates a small fixture (fast enough for CI).
    pub fn new(num_sources: usize, seed: u64) -> Self {
        let synth = generate(&SynthConfig::small(num_sources), seed);
        let matcher = Arc::new(ClusterMatcher::new(
            Arc::clone(&synth.universe),
            JaccardNGram::trigram(),
        ));
        Fixture { synth, matcher }
    }

    /// Builds a problem with the paper's default QEFs.
    pub fn problem(&self, constraints: Constraints) -> Problem {
        Problem::new(
            Arc::clone(&self.synth.universe),
            Arc::clone(&self.matcher) as Arc<dyn mube_core::MatchOperator>,
            paper_default_qefs("mttf"),
            constraints,
        )
        .expect("fixture constraints must be valid")
    }

    /// Builds a session with a CI-sized solver budget.
    pub fn session(&self, constraints: Constraints, seed: u64) -> Session {
        Session::new(self.problem(constraints), Box::new(ci_tabu()), seed)
    }
}

/// A solver budget small enough for CI but big enough to find good
/// solutions on small fixtures.
pub fn ci_tabu() -> TabuSearch {
    TabuSearch {
        max_evaluations: 1_200,
        max_iterations: 200,
        ..TabuSearch::default()
    }
}

/// A CI-budgeted portfolio: `copies` rounds of tabu/SLS/annealing/PSO
/// (so `4 * copies` members) spread over `threads` OS threads. The
/// determinism contract does not depend on budgets, so tests stress the
/// portfolio cheaply through this instead of the 20k-evaluation defaults.
pub fn ci_portfolio(copies: usize, threads: usize) -> Portfolio {
    let mut members: Vec<Box<dyn SubsetSolver>> = Vec::new();
    for _ in 0..copies.max(1) {
        members.push(Box::new(TabuSearch {
            max_evaluations: 300,
            max_iterations: 60,
            ..TabuSearch::default()
        }));
        members.push(Box::new(StochasticLocalSearch {
            max_evaluations: 300,
            ..Default::default()
        }));
        members.push(Box::new(SimulatedAnnealing {
            max_evaluations: 300,
            ..Default::default()
        }));
        members.push(Box::new(ParticleSwarm {
            max_evaluations: 300,
            ..Default::default()
        }));
    }
    Portfolio::new(members).threads(threads)
}

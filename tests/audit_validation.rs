//! The audit contract, property-tested end to end: a universe and
//! constraint set the pre-solve [`Analyzer`] passes without errors admits a
//! solution the post-solve [`SolutionValidator`] accepts — and corrupting
//! that solution (mutating a GA, dropping a required source) gets caught.

use std::collections::BTreeSet;
use std::sync::Arc;

use mube_audit::Analyzer;
use mube_core::constraints::Constraints;
use mube_core::ga::{GlobalAttribute, MediatedSchema};
use mube_core::problem::Problem;
use mube_core::qefs::paper_default_qefs;
use mube_core::validate::{SolutionValidator, Violation};
use mube_core::{AttrId, MatchOperator, SourceId};
use mube_integration::{ci_tabu, Fixture};
use mube_match::similarity::JaccardNGram;
use proptest::prelude::*;

/// Each case generates a universe and runs a full solve: keep counts small.
fn config() -> ProptestConfig {
    ProptestConfig {
        cases: 10,
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(config())]

    /// An analyzer pass without errors means the problem constructs and the
    /// solver's answer survives independent post-solve validation.
    #[test]
    fn analyzer_clean_problems_admit_validated_solutions(
        seed in 0u64..1000,
        m in 3usize..8,
        pin in 0u32..15,
    ) {
        let fx = Fixture::new(15, seed);
        let constraints =
            Constraints::with_max_sources(m).theta(0.75).require_source(SourceId(pin));
        let measure = JaccardNGram::trigram();
        let report = Analyzer::new(&fx.synth.universe)
            .constraints(&constraints)
            .similarity(&measure)
            .run();
        prop_assert!(
            !report.has_errors(),
            "generated fixtures must analyze error-free: {:?}",
            report.diagnostics()
        );
        let problem = fx.problem(constraints);
        let solution = problem.solve(&ci_tabu(), seed).expect("clean problems solve");
        let validator = SolutionValidator::for_problem(&problem);
        prop_assert_eq!(validator.check(&solution), Vec::new());
    }

    /// Dropping a required source from an otherwise-genuine solution is
    /// always rejected.
    #[test]
    fn dropped_required_source_is_rejected(seed in 0u64..1000, pin in 0u32..12) {
        let fx = Fixture::new(12, seed);
        let constraints =
            Constraints::with_max_sources(5).require_source(SourceId(pin));
        let problem = fx.problem(constraints);
        let mut solution = problem.solve(&ci_tabu(), seed).expect("solvable");
        solution.sources.remove(&SourceId(pin));
        let validator = SolutionValidator::for_problem(&problem);
        let violations = validator.check(&solution);
        prop_assert!(
            violations.contains(&Violation::MissingRequiredSource { source: SourceId(pin) }),
            "{violations:?}"
        );
        prop_assert!(validator.validate(&solution).is_err());
    }

    /// Grafting a GA that reaches outside the selected sources is always
    /// rejected.
    #[test]
    fn mutated_ga_is_rejected(seed in 0u64..1000) {
        let fx = Fixture::new(12, seed);
        let problem = fx.problem(Constraints::with_max_sources(4));
        let mut solution = problem.solve(&ci_tabu(), seed).expect("solvable");
        let stranger = fx
            .synth
            .universe
            .source_ids()
            .find(|s| !solution.sources.contains(s))
            .expect("m < n leaves unselected sources");
        let mut gas: Vec<GlobalAttribute> = solution.schema.gas().to_vec();
        gas.push(GlobalAttribute::singleton(AttrId::new(stranger, 0)));
        solution.schema = MediatedSchema::new(gas);
        let validator = SolutionValidator::for_problem(&problem);
        let violations = validator.check(&solution);
        prop_assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::GaOutsideSelection { source, .. } if *source == stranger)),
            "{violations:?}"
        );
        prop_assert!(validator.validate(&solution).is_err());
    }

    /// Tampering with the stated quality is always rejected.
    #[test]
    fn inflated_quality_is_rejected(seed in 0u64..1000) {
        let fx = Fixture::new(10, seed);
        let problem = fx.problem(Constraints::with_max_sources(4));
        let mut solution = problem.solve(&ci_tabu(), seed).expect("solvable");
        solution.quality = (solution.quality + 0.37).min(1.0) + 1.0;
        let validator = SolutionValidator::for_problem(&problem);
        prop_assert!(validator.validate(&solution).is_err());
    }
}

/// Every solution a `Session` hands back has already survived the
/// validator (it runs inside `Session::run`), and re-validating externally
/// agrees across feedback iterations.
#[test]
fn session_solutions_validate_across_feedback() {
    let fx = Fixture::new(14, 7);
    let mut session = fx.session(Constraints::with_max_sources(5), 7);
    let first = session.run().expect("first iteration").clone();
    assert!(SolutionValidator::for_problem(session.problem())
        .validate(&first)
        .is_ok());

    // Feed back: pin a selected source, re-run, validate under the new
    // constraints.
    let pinned = *first.sources.iter().next().expect("non-empty");
    session.pin_source(pinned).expect("pin known source");
    let second = session.run().expect("second iteration").clone();
    assert!(SolutionValidator::for_problem(session.problem())
        .validate(&second)
        .is_ok());
    assert!(second.sources.contains(&pinned));
}

/// The analyzer's MUBE001 error is a faithful promise: the same constraint
/// set fails `Problem::new`.
#[test]
fn analyzer_errors_predict_construction_failure() {
    let fx = Fixture::new(8, 3);
    let sources: BTreeSet<SourceId> = fx.synth.universe.source_ids().take(3).collect();
    let mut constraints = Constraints::with_max_sources(2);
    for &s in &sources {
        constraints.required_sources.insert(s);
    }
    let report = Analyzer::new(&fx.synth.universe)
        .constraints(&constraints)
        .run();
    assert!(report.has_errors());
    assert!(report.codes().any(|c| c.code() == "MUBE001"));
    let construction = Problem::new(
        Arc::clone(&fx.synth.universe),
        Arc::clone(&fx.matcher) as Arc<dyn MatchOperator>,
        paper_default_qefs("mttf"),
        constraints,
    );
    assert!(construction.is_err());
}

//! Cross-crate tests tying the selection-time QEFs to query-time reality:
//! the coverage/redundancy scores `µBE` optimizes must predict what the
//! executor actually observes when queries run.

use std::sync::Arc;

use mube_core::constraints::Constraints;
use mube_core::overlap::overlap_matrix;
use mube_exec::{Executor, Query, WindowBackend};
use mube_integration::Fixture;

fn executor(fx: &Fixture) -> Executor<WindowBackend> {
    Executor::new(
        Arc::clone(&fx.synth.universe),
        WindowBackend::new(&fx.synth),
    )
}

#[test]
fn coverage_score_predicts_query_recall() {
    let fx = Fixture::new(30, 40);
    let mut session = fx.session(Constraints::with_max_sources(10), 40);
    let solution = session.run().expect("feasible").clone();
    let coverage = solution.qef_score("coverage").expect("QEF present");

    // Query the whole tuple space: recall = |answer| / |universe distinct|.
    let exec = executor(&fx);
    let report = exec.execute_solution(&solution, &Query::range(0, u64::MAX));
    let recall = report.distinct() as f64 / fx.synth.exact_distinct_universe() as f64;
    assert!(
        (coverage - recall).abs() < 0.15,
        "coverage score {coverage:.3} vs executed recall {recall:.3}"
    );
}

#[test]
fn redundancy_score_predicts_transfer_waste() {
    let fx = Fixture::new(30, 41);
    let mut session = fx.session(Constraints::with_max_sources(8), 41);
    let solution = session.run().expect("feasible").clone();
    let exec = executor(&fx);
    let report = exec.execute_solution(&solution, &Query::range(0, u64::MAX));

    // Our redundancy reconstruction: 1 − overlap / ((|S|−1)·distinct).
    let k = solution.sources.len();
    if k > 1 && report.distinct() > 0 {
        let expected_waste =
            report.duplicates() as f64 / ((k - 1) as f64 * report.distinct() as f64);
        let scored = solution.qef_score("redundancy").expect("QEF present");
        assert!(
            (scored - (1.0 - expected_waste)).abs() < 0.15,
            "redundancy score {scored:.3} vs executed {:.3}",
            1.0 - expected_waste
        );
    }
}

#[test]
fn per_source_novelty_matches_overlap_diagnostics() {
    let fx = Fixture::new(25, 42);
    let mut session = fx.session(Constraints::with_max_sources(6), 42);
    let solution = session.run().expect("feasible").clone();
    let matrix = overlap_matrix(&fx.synth.universe, &solution.sources);

    // A pair the diagnostics call heavily overlapping must also duplicate
    // tuples at execution time.
    let exec = executor(&fx);
    for (a, b, frac) in matrix.heavy_pairs(0.5) {
        let pair: std::collections::BTreeSet<_> = [a, b].into();
        let report = exec.execute(&pair, &Query::range(0, u64::MAX));
        assert!(
            report.duplicates() > 0,
            "diagnosed {frac:.2} overlap between {a} and {b} but no duplicates executed"
        );
    }
}

#[test]
fn projection_limits_fanout_to_schema_sources() {
    let fx = Fixture::new(30, 43);
    let mut session = fx.session(Constraints::with_max_sources(10), 43);
    let solution = session.run().expect("feasible").clone();
    if solution.schema.is_empty() {
        return; // nothing to project onto
    }
    let exec = executor(&fx);
    let report = exec.execute_solution(&solution, &Query::range(0, u64::MAX).project([0]));
    let ga_sources: std::collections::BTreeSet<_> = solution.schema.gas()[0].sources().collect();
    for fetch in &report.per_source {
        assert!(ga_sources.contains(&fetch.source));
    }
    assert_eq!(
        report.per_source.len() + report.unanswerable.len(),
        solution.sources.len()
    );
}

//! The portfolio's determinism contract, end to end: for a fixed seed the
//! `mube solve --json` output is **byte-identical** no matter how many
//! threads run the portfolio, and the shared champion behaves as an
//! order-independent monotone fold even under heavy thread churn.

use std::collections::BTreeSet;

use mube_cli::{parse, run};
use mube_core::constraints::Constraints;
use mube_core::SourceId;
use mube_integration::{ci_portfolio, Fixture};

/// Path to the committed portfolio fixture catalog, resolved relative to
/// the workspace root.
fn fixture_catalog() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../fixtures/portfolio.catalog").to_string()
}

fn solve_json(threads: &str, seed: &str) -> String {
    let path = fixture_catalog();
    run(parse(&[
        "solve",
        &path,
        "--max",
        "6",
        "--seed",
        seed,
        "--threads",
        threads,
        "--json",
    ])
    .expect("flags parse"))
    .expect("fixture catalog solves")
}

/// ISSUE acceptance: `--threads 1` and `--threads 8` produce byte-identical
/// JSON for the same seed on the committed fixture.
#[test]
fn cli_json_is_byte_identical_across_thread_counts() {
    let one = solve_json("1", "7");
    let eight = solve_json("8", "7");
    assert!(one.starts_with('{') && one.ends_with('}'), "{one}");
    assert_eq!(one.as_bytes(), eight.as_bytes());
    // And at an intermediate count, for a different seed.
    assert_eq!(
        solve_json("1", "42").as_bytes(),
        solve_json("4", "42").as_bytes()
    );
}

/// A 16-member portfolio hammered across 8 OS threads for 50 independent
/// runs: every champion trace must be monotone non-decreasing, end at the
/// returned score, and the winner must replay identically single-threaded.
#[test]
fn stress_champion_is_monotone_under_contention() {
    let fx = Fixture::new(18, 77);
    let problem = fx.problem(Constraints::with_max_sources(6).theta(0.6));
    let portfolio = ci_portfolio(4, 8);
    assert_eq!(portfolio.member_count(), 16);
    let serial = ci_portfolio(4, 1);
    for iteration in 0..50u64 {
        let run = portfolio.run(&problem, iteration);
        assert!(
            !run.champion_trace.is_empty(),
            "iteration {iteration}: no champion was ever published"
        );
        for w in run.champion_trace.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "iteration {iteration}: champion regressed {:?}",
                run.champion_trace
            );
        }
        let (_, last) = *run.champion_trace.last().unwrap();
        assert_eq!(
            last.to_bits(),
            run.result.score.to_bits(),
            "iteration {iteration}: trace does not end at the winner"
        );
        // Scheduling independence: a single-threaded replay of the same
        // seed reproduces the winner and its selection exactly.
        let replay = serial.run(&problem, iteration);
        assert_eq!(replay.winner, run.winner, "iteration {iteration}");
        assert_eq!(replay.result, run.result, "iteration {iteration}");
    }
}

/// The portfolio's winning selection scores exactly what the problem's
/// full evaluation path says it scores.
#[test]
fn winner_score_matches_full_evaluation() {
    let fx = Fixture::new(15, 3);
    let problem = fx.problem(Constraints::with_max_sources(5).theta(0.65));
    let run = ci_portfolio(2, 4).run(&problem, 9);
    let selection: BTreeSet<SourceId> = run
        .result
        .selected
        .iter()
        .map(|&i| SourceId(i as u32))
        .collect();
    assert_eq!(
        run.result.score.to_bits(),
        problem.objective(&selection).to_bits(),
        "portfolio score diverges from the full path on {selection:?}"
    );
    // The aggregate work tally really is the sum over members.
    let evals: u64 = run.members.iter().map(|m| m.result.evaluations).sum();
    assert_eq!(run.result.evaluations, evals);
}

//! Self-healing storage end-to-end: the background scrubber catching disk
//! corruption and fencing the node read-only, and `/admin/resync` walking a
//! diverged (quarantined) follower back to health with a full copy from the
//! leader — all against real servers on ephemeral ports.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use mube_core::catalog;
use mube_serve::{Event, FsyncPolicy, Journal, Json, ServeConfig, Server, ServerHandle};
use mube_synth::{generate, SynthConfig};

type Spawned = (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mube-selfheal-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test data dir");
    dir
}

fn leader_config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        threads: 2,
        max_solve_evaluations: 600,
        data_dir: Some(dir.display().to_string()),
        fsync: FsyncPolicy::Always,
        repl_addr: Some("127.0.0.1:0".to_string()),
        heartbeat_interval: Duration::from_millis(100),
        read_timeout: Duration::from_secs(1),
        ..ServeConfig::default()
    }
}

fn follower_config(dir: &std::path::Path, leader: SocketAddr) -> ServeConfig {
    ServeConfig {
        threads: 2,
        max_solve_evaluations: 600,
        data_dir: Some(dir.display().to_string()),
        fsync: FsyncPolicy::Always,
        follow: Some(leader.to_string()),
        heartbeat_interval: Duration::from_millis(100),
        read_timeout: Duration::from_millis(400),
        ..ServeConfig::default()
    }
}

fn spawn(config: ServeConfig) -> Spawned {
    Server::spawn(config).expect("bind test server")
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    let parsed = Json::parse(&body).unwrap_or_else(|e| panic!("bad JSON body {body:?}: {e}"));
    (status, parsed)
}

fn catalog_text(sources: usize, seed: u64) -> String {
    catalog::to_text(&generate(&SynthConfig::small(sources), seed).universe)
}

fn upload_catalog(addr: SocketAddr, sources: usize, seed: u64) -> u64 {
    let mut j = mube_core::jsonw::JsonBuf::new();
    j.begin_obj();
    j.key("catalog").str_value(&catalog_text(sources, seed));
    j.end_obj();
    let (status, body) = request(addr, "POST", "/catalogs", &j.finish());
    assert_eq!(status, 201, "{body:?}");
    body.get("catalog").and_then(Json::as_u64).expect("id")
}

fn healthz(addr: SocketAddr) -> Json {
    let (status, v) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{v:?}");
    v
}

fn wait_healthz(addr: SocketAddr, what: &str, pred: impl Fn(&Json) -> bool) -> Json {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut last = Json::Obj(Vec::new());
    while Instant::now() < deadline {
        last = healthz(addr);
        if pred(&last) {
            return last;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("timed out waiting for {what}; last healthz: {last:?}");
}

fn err_code(v: &Json) -> &str {
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or("")
}

fn quarantine_count(dir: &std::path::Path) -> usize {
    std::fs::read_dir(dir)
        .expect("read data dir")
        .filter_map(Result::ok)
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.starts_with("quarantine-") && name.ends_with(".wal")
        })
        .count()
}

#[test]
fn scrubber_detects_disk_corruption_and_fences_the_node_read_only() {
    let dir = fresh_dir("scrub");
    let mut config = ServeConfig {
        threads: 2,
        max_solve_evaluations: 600,
        data_dir: Some(dir.display().to_string()),
        fsync: FsyncPolicy::Always,
        ..ServeConfig::default()
    };
    config.scrub_interval = Duration::from_millis(100);
    let (server, join) = spawn(config);

    upload_catalog(server.addr(), 6, 42);

    // The scrubber runs cleanly against an intact journal.
    let h = wait_healthz(server.addr(), "a clean scrub pass", |h| {
        h.get("scrub")
            .and_then(|s| s.get("runs"))
            .and_then(Json::as_u64)
            >= Some(1)
    });
    assert_eq!(h.get("read_only").and_then(Json::as_bool), Some(false));
    assert_eq!(
        h.get("scrub")
            .and_then(|s| s.get("ok"))
            .and_then(Json::as_bool),
        Some(true),
        "{h:?}"
    );

    // Smash the journal behind the server's back: append bytes that can
    // never parse as a frame. The next scrub pass must notice that disk no
    // longer backs the state being served, and fence the node.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("journal.wal"))
        .expect("open live journal");
    f.write_all(b"\xde\xad. disk rot, as delivered by a failing controller")
        .expect("corrupt journal");
    f.sync_all().expect("sync corruption");
    drop(f);

    let fenced = wait_healthz(server.addr(), "scrub to fence the node", |h| {
        h.get("read_only").and_then(Json::as_bool) == Some(true)
    });
    assert_eq!(
        fenced
            .get("scrub")
            .and_then(|s| s.get("ok"))
            .and_then(Json::as_bool),
        Some(false),
        "{fenced:?}"
    );

    // Mutations are refused with a stable code; reads still serve.
    let (status, refused) = request(server.addr(), "POST", "/catalogs", "{\"catalog\":\"x\"}");
    assert_eq!(status, 503, "{refused:?}");
    assert_eq!(err_code(&refused), "read_only");

    // Reads survive the fence, and /metrics carries the scrub's own error
    // text for the operator.
    let (status, metrics) = request(server.addr(), "GET", "/metrics", "");
    assert_eq!(status, 200, "reads must survive the fence");
    let scrub = metrics.get("scrub").expect("scrub block");
    assert!(
        scrub.get("failures").and_then(Json::as_u64) >= Some(1),
        "{metrics:?}"
    );
    assert!(
        scrub
            .get("last_error")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("journal.wal")),
        "{metrics:?}"
    );

    server.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn resync_heals_a_diverged_follower_and_restores_promotability() {
    let (ldir, fdir) = (fresh_dir("resync-l"), fresh_dir("resync-f"));

    // Pre-seed both journals at LSN 1 with different events, so the first
    // digest round quarantines the follower.
    {
        let (j, _, _) = Journal::open(&ldir, FsyncPolicy::Always, 256).unwrap();
        j.append(Event::CatalogCreate {
            id: 1,
            text: catalog_text(6, 1),
        })
        .unwrap();
    }
    {
        let (j, _, _) = Journal::open(&fdir, FsyncPolicy::Always, 256).unwrap();
        j.append(Event::CatalogCreate {
            id: 1,
            text: catalog_text(6, 2),
        })
        .unwrap();
    }

    let (leader, ljoin) = spawn(leader_config(&ldir));
    let repl = leader.repl_addr().expect("leader repl addr");
    let (follower, fjoin) = spawn(follower_config(&fdir, repl));

    // Resync is a follower-only operation.
    let (status, refused) = request(leader.addr(), "POST", "/admin/resync", "");
    assert_eq!(status, 409, "{refused:?}");
    assert_eq!(err_code(&refused), "not_follower");

    wait_healthz(follower.addr(), "divergence detection", |h| {
        h.get("follower")
            .and_then(|f| f.get("diverged"))
            .and_then(Json::as_bool)
            == Some(true)
    });
    assert!(fdir.join("diverged.marker").exists());
    let (status, refused) = request(follower.addr(), "POST", "/admin/promote", "");
    assert_eq!(status, 409, "{refused:?}");
    assert_eq!(err_code(&refused), "diverged");

    // The operator-triggered repair: archive the bad journal for forensics,
    // wipe, and re-pull everything from the leader.
    let (status, resynced) = request(follower.addr(), "POST", "/admin/resync", "");
    assert_eq!(status, 200, "{resynced:?}");
    assert_eq!(resynced.get("resync").and_then(Json::as_bool), Some(true));
    assert_eq!(
        resynced.get("was_diverged").and_then(Json::as_bool),
        Some(true)
    );
    assert!(
        quarantine_count(&fdir) >= 1,
        "the divergent journal must be archived, not destroyed"
    );

    // The follower converges to the leader's exact state and sheds the
    // quarantine marker.
    let leader_lsn = healthz(leader.addr())
        .get("lsn")
        .and_then(Json::as_u64)
        .expect("leader lsn");
    let ldigest = healthz(leader.addr())
        .get("digest")
        .and_then(Json::as_str)
        .map(str::to_string)
        .expect("leader digest");
    let fh = wait_healthz(follower.addr(), "post-resync convergence", |h| {
        h.get("lsn").and_then(Json::as_u64) == Some(leader_lsn)
            && h.get("digest").and_then(Json::as_str) == Some(ldigest.as_str())
            && h.get("follower")
                .and_then(|f| f.get("diverged"))
                .and_then(Json::as_bool)
                == Some(false)
    });
    assert!(!fdir.join("diverged.marker").exists(), "{fh:?}");

    // New leader traffic still flows to the healed follower.
    upload_catalog(leader.addr(), 5, 77);
    let lsn2 = healthz(leader.addr())
        .get("lsn")
        .and_then(Json::as_u64)
        .expect("lsn");
    wait_healthz(follower.addr(), "post-resync replication", |h| {
        h.get("lsn").and_then(Json::as_u64) == Some(lsn2)
    });

    // After both sides quiesce, the journals agree byte-for-byte (polled:
    // the follower's last fsync can trail the healthz answer briefly).
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let l = std::fs::read(ldir.join("journal.wal")).expect("leader journal");
        let f = std::fs::read(fdir.join("journal.wal")).expect("follower journal");
        if l == f {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "journals never converged: leader {} bytes, follower {} bytes",
            l.len(),
            f.len()
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Promotion eligibility is restored — and the digest proves the state.
    let ldigest2 = healthz(leader.addr())
        .get("digest")
        .and_then(Json::as_str)
        .map(str::to_string)
        .expect("digest");
    leader.shutdown();
    ljoin.join().unwrap().unwrap();
    let (status, promoted) = request(follower.addr(), "POST", "/admin/promote", "");
    assert_eq!(status, 200, "{promoted:?}");
    assert_eq!(
        promoted.get("digest").and_then(Json::as_str),
        Some(ldigest2.as_str()),
        "promoted state must carry the dead leader's digest"
    );

    follower.shutdown();
    fjoin.join().unwrap().unwrap();
}

#[test]
fn resync_survives_a_follower_restart() {
    let (ldir, fdir) = (fresh_dir("resync-restart-l"), fresh_dir("resync-restart-f"));
    {
        let (j, _, _) = Journal::open(&ldir, FsyncPolicy::Always, 256).unwrap();
        j.append(Event::CatalogCreate {
            id: 1,
            text: catalog_text(6, 3),
        })
        .unwrap();
    }
    {
        let (j, _, _) = Journal::open(&fdir, FsyncPolicy::Always, 256).unwrap();
        j.append(Event::CatalogCreate {
            id: 1,
            text: catalog_text(6, 4),
        })
        .unwrap();
    }

    let (leader, ljoin) = spawn(leader_config(&ldir));
    let repl = leader.repl_addr().expect("leader repl addr");
    let (follower, fjoin) = spawn(follower_config(&fdir, repl));

    wait_healthz(follower.addr(), "divergence detection", |h| {
        h.get("follower")
            .and_then(|f| f.get("diverged"))
            .and_then(Json::as_bool)
            == Some(true)
    });
    let (status, v) = request(follower.addr(), "POST", "/admin/resync", "");
    assert_eq!(status, 200, "{v:?}");
    let leader_lsn = healthz(leader.addr())
        .get("lsn")
        .and_then(Json::as_u64)
        .expect("lsn");
    wait_healthz(follower.addr(), "post-resync convergence", |h| {
        h.get("lsn").and_then(Json::as_u64) == Some(leader_lsn)
    });

    // Restart the follower process: the healed state must boot clean —
    // no marker, no divergence, digest still matching the leader's.
    follower.shutdown();
    fjoin.join().unwrap().unwrap();
    let (follower2, fjoin2) = spawn(follower_config(&fdir, repl));
    let ldigest = healthz(leader.addr())
        .get("digest")
        .and_then(Json::as_str)
        .map(str::to_string)
        .expect("digest");
    wait_healthz(follower2.addr(), "restart convergence", |h| {
        h.get("lsn").and_then(Json::as_u64) == Some(leader_lsn)
            && h.get("digest").and_then(Json::as_str) == Some(ldigest.as_str())
    });
    assert!(!fdir.join("diverged.marker").exists());
    let (status, promotable) = request(follower2.addr(), "POST", "/admin/promote", "");
    // Promotion against a live leader is a legitimate switchover; what
    // matters here is that `diverged` is no longer the refusal.
    assert_ne!(err_code(&promotable), "diverged", "{status} {promotable:?}");

    follower2.shutdown();
    leader.shutdown();
    fjoin2.join().unwrap().unwrap();
    ljoin.join().unwrap().unwrap();
}

//! End-to-end tests for `mube-serve`: a real server on an ephemeral port,
//! driven over `std::net::TcpStream` exactly like an external client.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use mube_core::catalog;
use mube_serve::{Json, ServeConfig, Server, ServerHandle};
use mube_synth::{generate, SynthConfig};

/// A CI-sized server: ephemeral port, small solve budget.
fn test_config(threads: usize) -> ServeConfig {
    ServeConfig {
        threads,
        max_solve_evaluations: 800,
        ..ServeConfig::default()
    }
}

fn spawn(threads: usize) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    Server::spawn(test_config(threads)).expect("bind test server")
}

/// One HTTP request over a fresh connection; returns the raw response
/// text (status line, headers, body) for header-level assertions.
fn raw_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw
}

/// One HTTP request over a fresh connection (the server closes after each
/// response). Returns `(status, parsed body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let raw = raw_request(addr, method, path, body);
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    let parsed = Json::parse(&body).unwrap_or_else(|e| panic!("bad JSON body {body:?}: {e}"));
    (status, parsed)
}

/// Uploads a small synthetic catalog and returns its id.
fn upload_catalog(addr: SocketAddr, sources: usize, seed: u64) -> u64 {
    let synth = generate(&SynthConfig::small(sources), seed);
    let text = catalog::to_text(&synth.universe);
    let mut j = mube_core::jsonw::JsonBuf::new();
    j.begin_obj();
    j.key("catalog").str_value(&text);
    j.end_obj();
    let (status, body) = request(addr, "POST", "/catalogs", &j.finish());
    assert_eq!(status, 201, "{body:?}");
    body.get("catalog")
        .and_then(Json::as_u64)
        .expect("catalog id")
}

fn create_session(addr: SocketAddr, catalog: u64, seed: u64) -> u64 {
    let body = format!(
        "{{\"catalog\":{catalog},\"seed\":{seed},\"max_sources\":4,\"beta\":1,\"theta\":0.75}}"
    );
    let (status, v) = request(addr, "POST", "/sessions", &body);
    assert_eq!(status, 201, "{v:?}");
    v.get("session").and_then(Json::as_u64).expect("session id")
}

#[test]
fn full_feedback_loop_over_http() {
    let (handle, join) = spawn(4);
    let addr = handle.addr();

    // Health first: alive and not draining.
    let (status, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("draining").and_then(Json::as_bool), Some(false));

    let catalog_id = upload_catalog(addr, 12, 2007);
    let session = create_session(addr, catalog_id, 7);

    // Iteration 1.
    let (status, first) = request(addr, "POST", &format!("/sessions/{session}/solve"), "");
    assert_eq!(status, 200, "{first:?}");
    assert_eq!(first.get("iteration").and_then(Json::as_u64), Some(1));
    assert_eq!(first.get("diff"), Some(&Json::Null));
    let solution = first.get("solution").expect("solution");
    let picked = solution.get("sources").and_then(Json::as_array).unwrap();
    assert!(!picked.is_empty() && picked.len() <= 4, "{picked:?}");
    assert!(
        solution.get("quality").and_then(Json::as_f64).unwrap() > 0.0,
        "{solution:?}"
    );
    assert!(
        !solution
            .get("schema")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty(),
        "solution should mediate at least one GA"
    );

    // Feedback: pin a source not necessarily selected, adopt GA 0, and
    // re-weight — the paper's §6 gestures, over the wire.
    let feedback = "{\"actions\":[\
        {\"op\":\"pin\",\"source\":\"site0003\"},\
        {\"op\":\"adopt_ga\",\"index\":0},\
        {\"op\":\"weight\",\"qef\":\"coverage\",\"value\":0.4}]}";
    let (status, fb) = request(
        addr,
        "POST",
        &format!("/sessions/{session}/feedback"),
        feedback,
    );
    assert_eq!(status, 200, "{fb:?}");
    assert_eq!(fb.get("applied").and_then(Json::as_u64), Some(3));
    let constraints = fb.get("constraints").expect("constraints");
    let pinned = constraints.get("pinned").and_then(Json::as_array).unwrap();
    assert!(
        pinned.iter().any(|p| p.as_str() == Some("site0003")),
        "{pinned:?}"
    );
    assert_eq!(
        constraints.get("required_gas").and_then(Json::as_u64),
        Some(1)
    );

    // Iteration 2 must honor the pin and report a diff.
    let (status, second) = request(addr, "POST", &format!("/sessions/{session}/solve"), "");
    assert_eq!(status, 200, "{second:?}");
    assert_eq!(second.get("iteration").and_then(Json::as_u64), Some(2));
    let names: Vec<&str> = second
        .get("solution")
        .and_then(|s| s.get("sources"))
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    assert!(names.contains(&"site0003"), "{names:?}");
    assert!(second.get("diff").unwrap().get("gas_changed").is_some());

    // Explain: every selected source gets a contribution entry.
    let (status, ex) = request(addr, "GET", &format!("/sessions/{session}/explain"), "");
    assert_eq!(status, 200, "{ex:?}");
    let contributions = ex.get("contributions").and_then(Json::as_array).unwrap();
    assert_eq!(contributions.len(), names.len(), "{ex:?}");

    // Lint: the session's constraints audit cleanly here.
    let (status, lint) = request(addr, "GET", &format!("/sessions/{session}/lint"), "");
    assert_eq!(status, 200, "{lint:?}");
    assert_eq!(lint.get("errors").and_then(Json::as_bool), Some(false));
    assert!(lint.get("diagnostics").and_then(Json::as_array).is_some());

    // Execute the latest solution with every source forced to fail: the
    // report must say so, and the same seed must reproduce it exactly.
    let exec_body = "{\"faults\":\"rate=1\",\"fault_seed\":3}";
    let (status, ex1) = request(
        addr,
        "POST",
        &format!("/sessions/{session}/execute"),
        exec_body,
    );
    assert_eq!(status, 200, "{ex1:?}");
    let report = ex1.get("report").expect("report");
    assert_eq!(
        report
            .get("degradation")
            .and_then(|d| d.get("clean"))
            .and_then(Json::as_bool),
        Some(false),
        "{report:?}"
    );
    assert_eq!(report.get("distinct").and_then(Json::as_u64), Some(0));
    let health = ex1.get("health").expect("health");
    assert!(
        health.get("failures").and_then(Json::as_u64).unwrap() > 0,
        "{health:?}"
    );
    let (status, ex2) = request(
        addr,
        "POST",
        &format!("/sessions/{session}/execute"),
        exec_body,
    );
    assert_eq!(status, 200);
    assert_eq!(
        ex1.get("report"),
        ex2.get("report"),
        "same seed, same report"
    );

    // Without faults the same execution is clean and returns data.
    let (status, clean) = request(addr, "POST", &format!("/sessions/{session}/execute"), "{}");
    assert_eq!(status, 200, "{clean:?}");
    let clean_report = clean.get("report").expect("report");
    assert_eq!(
        clean_report
            .get("degradation")
            .and_then(|d| d.get("clean"))
            .and_then(Json::as_bool),
        Some(true),
        "{clean_report:?}"
    );
    assert!(clean_report.get("distinct").and_then(Json::as_u64).unwrap() > 0);

    // Executing a never-solved session is a 409, same as explain.
    let unsolved = create_session(addr, catalog_id, 8);
    let (status, err) = request(addr, "POST", &format!("/sessions/{unsolved}/execute"), "{}");
    assert_eq!(status, 409);
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("no_solution")
    );
    let (status, _) = request(addr, "DELETE", &format!("/sessions/{unsolved}"), "");
    assert_eq!(status, 200);

    // Error paths: stable codes, feedback reports the failing action.
    let (status, err) = request(
        addr,
        "POST",
        &format!("/sessions/{session}/feedback"),
        "{\"actions\":[{\"op\":\"adopt_ga\",\"index\":999}]}",
    );
    assert_eq!(status, 409);
    let e = err.get("error").expect("error object");
    assert_eq!(e.get("code").and_then(Json::as_str), Some("stale_ga_index"));
    assert_eq!(e.get("action").and_then(Json::as_u64), Some(0));

    let (status, err) = request(addr, "POST", "/sessions/424242/solve", "");
    assert_eq!(status, 404);
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("unknown_session")
    );

    let (status, err) = request(addr, "POST", "/sessions", "{not json");
    assert_eq!(status, 400);
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_json")
    );

    let (status, err) = request(addr, "POST", "/sessions", "{\"catalog\":999}");
    assert_eq!(status, 404);
    assert_eq!(
        err.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("unknown_catalog")
    );

    let (status, _) = request(addr, "DELETE", "/catalogs", "");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);

    // Delete the session; it stops being addressable.
    let (status, del) = request(addr, "DELETE", &format!("/sessions/{session}"), "");
    assert_eq!(status, 200);
    assert_eq!(del.get("deleted").and_then(Json::as_bool), Some(true));
    let (status, _) = request(addr, "GET", &format!("/sessions/{session}/explain"), "");
    assert_eq!(status, 404);

    // Metrics must reflect everything above, via API and endpoint alike.
    let stats = handle.stats();
    assert_eq!(stats.catalogs_created, 1);
    assert_eq!(stats.sessions_created, 2);
    assert_eq!(stats.solves_run, 2);
    assert_eq!(stats.sessions_live, 0);
    assert_eq!(stats.requests_for("POST /sessions/{id}/solve"), 3);
    assert_eq!(stats.requests_for("POST /sessions/{id}/execute"), 4);
    assert_eq!(stats.request_hist.total, stats.total_requests());
    // Three executions ran (the 409 never reached the executor); the two
    // faulted ones burned retries, so attempts exceed successes.
    assert_eq!(stats.executions_run, 3);
    assert_eq!(stats.exec_hist.total, 3);
    assert!(stats.exec_fetch_attempts > stats.exec_fetch_failures);
    assert!(stats.exec_fetch_failures > 0);
    assert!(stats.exec_sources_failed > 0);
    assert_eq!(stats.worker_panics, 0);
    let (status, m) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(m.get("solves_run").and_then(Json::as_u64), Some(2));
    assert_eq!(m.get("worker_panics").and_then(Json::as_u64), Some(0));
    let exec = m.get("exec").expect("exec counters");
    assert_eq!(exec.get("executions_run").and_then(Json::as_u64), Some(3));
    assert_eq!(
        exec.get("fetch_failures").and_then(Json::as_u64),
        Some(stats.exec_fetch_failures)
    );

    handle.shutdown();
    join.join().expect("acceptor thread").expect("clean run");
}

#[test]
fn session_cap_answers_429_with_retry_after() {
    let config = ServeConfig {
        max_sessions: 1,
        ..test_config(2)
    };
    let (handle, join) = Server::spawn(config).expect("bind test server");
    let addr = handle.addr();
    let catalog_id = upload_catalog(addr, 8, 11);
    let _first = create_session(addr, catalog_id, 1);

    // The cap is 1 and the live session is not idle: creation is refused
    // with back-pressure the client can act on.
    let raw = raw_request(
        addr,
        "POST",
        "/sessions",
        &format!("{{\"catalog\":{catalog_id}}}"),
    );
    assert!(raw.starts_with("HTTP/1.1 429 "), "{raw:?}");
    assert!(raw.contains("retry-after: 1\r\n"), "{raw:?}");
    assert!(raw.contains("too_many_sessions"), "{raw:?}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn oversized_body_is_rejected_up_front() {
    let (handle, join) = spawn(2);
    let addr = handle.addr();
    // Declare a body far over the cap without sending it; the server must
    // refuse from the declaration alone.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(b"POST /catalogs HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 413 "), "{raw:?}");
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn concurrent_sessions_do_not_interfere() {
    const CLIENTS: usize = 8;
    const SOLVES_PER_CLIENT: usize = 2;
    let (handle, join) = spawn(4);
    let addr = handle.addr();
    let catalog_id = upload_catalog(addr, 12, 99);

    // Each client owns a distinct session and solves twice. Distinct seeds
    // exercise genuinely different search runs sharing one similarity
    // cache across worker threads.
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let session = create_session(addr, catalog_id, 1000 + i as u64);
                let mut qualities = Vec::new();
                for _ in 0..SOLVES_PER_CLIENT {
                    let (status, v) =
                        request(addr, "POST", &format!("/sessions/{session}/solve"), "");
                    assert_eq!(status, 200, "client {i}: {v:?}");
                    qualities.push(
                        v.get("solution")
                            .and_then(|s| s.get("quality"))
                            .and_then(Json::as_f64)
                            .expect("quality"),
                    );
                }
                (session, qualities)
            })
        })
        .collect();
    let results: Vec<(u64, Vec<f64>)> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();

    // Every client got its own session id and real solutions.
    let mut ids: Vec<u64> = results.iter().map(|(id, _)| *id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), CLIENTS);
    for (_, qualities) in &results {
        assert_eq!(qualities.len(), SOLVES_PER_CLIENT);
        assert!(qualities.iter().all(|q| *q > 0.0));
    }

    // The books balance: counters must add up exactly across threads.
    let stats = handle.stats();
    assert_eq!(stats.sessions_created, CLIENTS as u64);
    assert_eq!(stats.sessions_live, CLIENTS as u64);
    assert_eq!(stats.solves_run, (CLIENTS * SOLVES_PER_CLIENT) as u64);
    assert_eq!(
        stats.requests_for("POST /sessions/{id}/solve"),
        (CLIENTS * SOLVES_PER_CLIENT) as u64
    );
    assert_eq!(stats.requests_for("POST /sessions"), CLIENTS as u64);
    assert_eq!(stats.solve_hist.total, stats.solves_run);

    // Graceful shutdown: drain completes, the port closes.
    handle.shutdown();
    join.join().expect("acceptor thread").expect("clean run");
    assert!(handle.is_draining());
}

#[test]
fn portfolio_sessions_are_thread_count_invariant() {
    let (handle, join) = spawn(4);
    let addr = handle.addr();
    let catalog_id = upload_catalog(addr, 10, 41);

    // Two sessions, same catalog/seed/portfolio, differing only in threads.
    let mut solutions = Vec::new();
    for threads in [1u64, 8] {
        let body = format!(
            "{{\"catalog\":{catalog_id},\"seed\":7,\"max_sources\":4,\
             \"threads\":{threads},\"portfolio\":\"tabu,sls,anneal\"}}"
        );
        let (status, v) = request(addr, "POST", "/sessions", &body);
        assert_eq!(status, 201, "{v:?}");
        assert_eq!(
            v.get("solver").and_then(Json::as_str),
            Some("portfolio(tabu,sls,annealing)"),
            "{v:?}"
        );
        let session = v.get("session").and_then(Json::as_u64).expect("session id");
        let (status, solved) = request(addr, "POST", &format!("/sessions/{session}/solve"), "");
        assert_eq!(status, 200, "{solved:?}");
        solutions.push(format!("{:?}", solved.get("solution")));
    }
    assert_eq!(
        solutions[0], solutions[1],
        "thread count changed the solution"
    );

    // `restarts` alone engages the default portfolio; bad specs are 422,
    // bad thread counts 400.
    let body = format!("{{\"catalog\":{catalog_id},\"restarts\":2}}");
    let (status, v) = request(addr, "POST", "/sessions", &body);
    assert_eq!(status, 201, "{v:?}");
    assert_eq!(
        v.get("solver").and_then(Json::as_str),
        Some("portfolio(tabu,sls,annealing,pso,tabu,sls,annealing,pso)"),
        "{v:?}"
    );
    let body = format!("{{\"catalog\":{catalog_id},\"portfolio\":\"tabu,genetic\"}}");
    let (status, v) = request(addr, "POST", "/sessions", &body);
    assert_eq!(status, 422, "{v:?}");
    let body = format!("{{\"catalog\":{catalog_id},\"threads\":0}}");
    let (status, v) = request(addr, "POST", "/sessions", &body);
    assert_eq!(status, 400, "{v:?}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn resource_bounds_are_refused_with_a_stable_lint_code() {
    let (handle, join) = spawn(2);
    let addr = handle.addr();
    let catalog_id = upload_catalog(addr, 8, 13);

    // Each oversubscription is a 422 `invalid_parameter` carrying the
    // machine-readable MUBE015 lint code (PROTOCOL.md).
    let cases = [
        format!("{{\"catalog\":{catalog_id},\"threads\":100}}"),
        format!("{{\"catalog\":{catalog_id},\"restarts\":100}}"),
        // 5 members × 64 restarts = 320 total, over the 256 member cap
        // even though both factors are individually in bounds.
        format!("{{\"catalog\":{catalog_id},\"restarts\":64,\"portfolio\":\"tabu,tabu,tabu,tabu,tabu\"}}"),
    ];
    for body in &cases {
        let (status, v) = request(addr, "POST", "/sessions", body);
        assert_eq!(status, 422, "{body}: {v:?}");
        let err = v.get("error").expect("error object");
        assert_eq!(
            err.get("code").and_then(Json::as_str),
            Some("invalid_parameter"),
            "{v:?}"
        );
        let lint = err
            .get("lint")
            .and_then(Json::as_array)
            .expect("lint codes");
        assert!(lint.iter().any(|c| c.as_str() == Some("MUBE015")), "{v:?}");
    }

    // In-bounds values still work: nothing was rejected spuriously.
    let body = format!("{{\"catalog\":{catalog_id},\"threads\":2,\"restarts\":2}}");
    let (status, v) = request(addr, "POST", "/sessions", &body);
    assert_eq!(status, 201, "{v:?}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn solve_honours_time_budget_and_reports_timed_out() {
    let (handle, join) = spawn(2);
    let addr = handle.addr();
    let catalog_id = upload_catalog(addr, 10, 17);
    let session = create_session(addr, catalog_id, 7);

    // A zero budget fires the deadline before the first check, but the
    // anytime guarantee still yields a full, feasible solution.
    let (status, v) = request(
        addr,
        "POST",
        &format!("/sessions/{session}/solve"),
        "{\"time_budget_ms\":0}",
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(v.get("timed_out").and_then(Json::as_bool), Some(true));
    let solution = v.get("solution").expect("solution");
    assert!(
        !solution
            .get("sources")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty(),
        "deadline-cut solve must still select sources"
    );
    assert_eq!(
        solution.get("timed_out").and_then(Json::as_bool),
        Some(true),
        "the solution itself carries the flag too"
    );

    // An ample budget completes normally.
    let (status, v) = request(
        addr,
        "POST",
        &format!("/sessions/{session}/solve"),
        "{\"time_budget_ms\":60000}",
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(v.get("timed_out").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("iteration").and_then(Json::as_u64), Some(2));

    // Garbage budgets are a 400 before any work happens.
    let (status, v) = request(
        addr,
        "POST",
        &format!("/sessions/{session}/solve"),
        "{\"time_budget_ms\":\"soon\"}",
    );
    assert_eq!(status, 400, "{v:?}");

    // The metrics ledger separates cut solves from completed ones.
    let stats = handle.stats();
    assert_eq!(stats.solves_run, 2);
    assert_eq!(stats.solves_timed_out, 1);
    let (status, m) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(m.get("solves_timed_out").and_then(Json::as_u64), Some(1));

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn sessions_serialize_but_do_not_block_each_other() {
    // Two clients hammer the SAME session while a third uses its own:
    // same-session solves must serialize (iterations strictly increase,
    // no duplicates), and the sibling session must still make progress.
    let (handle, join) = spawn(4);
    let addr = handle.addr();
    let catalog_id = upload_catalog(addr, 10, 5);
    let shared = create_session(addr, catalog_id, 1);
    let solo = create_session(addr, catalog_id, 2);

    let iterations = Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut workers = Vec::new();
    for _ in 0..2 {
        let iterations = Arc::clone(&iterations);
        workers.push(std::thread::spawn(move || {
            for _ in 0..3 {
                let (status, v) = request(addr, "POST", &format!("/sessions/{shared}/solve"), "");
                assert_eq!(status, 200, "{v:?}");
                let it = v.get("iteration").and_then(Json::as_u64).unwrap();
                iterations.lock().unwrap().push(it);
            }
        }));
    }
    workers.push(std::thread::spawn(move || {
        for _ in 0..2 {
            let (status, v) = request(addr, "POST", &format!("/sessions/{solo}/solve"), "");
            assert_eq!(status, 200, "{v:?}");
        }
    }));
    for w in workers {
        w.join().expect("client thread");
    }

    // 6 solves on the shared session: iteration numbers are exactly 1..=6
    // in some order — proof the mutex serialized them without loss.
    let mut seen = iterations.lock().unwrap().clone();
    seen.sort_unstable();
    assert_eq!(seen, vec![1, 2, 3, 4, 5, 6]);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn prune_block_reduces_the_session_universe() {
    let (handle, join) = spawn(2);
    let addr = handle.addr();
    let catalog_id = upload_catalog(addr, 24, 2007);

    // Prune to 10 relevance survivors, deduplicating LSH near-duplicates.
    let body = format!(
        "{{\"catalog\":{catalog_id},\"seed\":7,\"max_sources\":4,\"theta\":0.3,\
         \"prune\":{{\"top_k\":10,\"dedup\":true}}}}"
    );
    let (status, v) = request(addr, "POST", "/sessions", &body);
    assert_eq!(status, 201, "{v:?}");
    let pruned = v.get("pruned").expect("201 echoes the prune stats");
    assert_eq!(
        pruned.get("catalog_sources").and_then(Json::as_u64),
        Some(24)
    );
    assert_eq!(pruned.get("survivors").and_then(Json::as_u64), Some(10));
    let clusters = pruned.get("clusters").and_then(Json::as_u64).unwrap();
    let kept = pruned.get("kept").and_then(Json::as_u64).unwrap();
    assert!(clusters <= 10 && kept <= 10, "{v:?}");
    let session = v.get("session").and_then(Json::as_u64).unwrap();

    // The pruned session still solves end to end.
    let (status, sol) = request(addr, "POST", &format!("/sessions/{session}/solve"), "");
    assert_eq!(status, 200, "{sol:?}");
    let selected = sol
        .get("solution")
        .and_then(|s| s.get("sources"))
        .and_then(Json::as_array)
        .expect("solution sources");
    assert!(!selected.is_empty() && selected.len() <= 4);

    // Pinned names survive pruning even with a tiny top_k.
    let body = format!(
        "{{\"catalog\":{catalog_id},\"seed\":7,\"max_sources\":4,\"theta\":0.3,\
         \"pins\":[\"site0021\"],\"prune\":{{\"top_k\":2,\"dedup\":true}}}}"
    );
    let (status, v) = request(addr, "POST", "/sessions", &body);
    assert_eq!(status, 201, "pinned source must survive pruning: {v:?}");

    // A malformed block is a 400, an unknown pinned name a 422.
    let body = format!("{{\"catalog\":{catalog_id},\"prune\":7}}");
    let (status, _) = request(addr, "POST", "/sessions", &body);
    assert_eq!(status, 400);
    let body =
        format!("{{\"catalog\":{catalog_id},\"pins\":[\"ghost\"],\"prune\":{{\"top_k\":5}}}}");
    let (status, v) = request(addr, "POST", "/sessions", &body);
    assert_eq!(status, 422, "{v:?}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn slowloris_is_cut_off_while_healthy_clients_proceed() {
    let mut config = test_config(2);
    config.request_deadline = Duration::from_secs(1);
    let (handle, join) = Server::spawn(config).expect("bind test server");
    let addr = handle.addr();

    // A slowloris peer: dribbles a partial request line, then stalls. The
    // total-request deadline must cut it off even though every individual
    // byte arrived "recently".
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    slow.write_all(b"GET /healthz HT").unwrap();
    let started = std::time::Instant::now();

    // Meanwhile a healthy client is not starved.
    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    let mut raw = String::new();
    slow.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 408 "), "{raw:?}");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "slowloris must be cut off near the deadline, not eventually"
    );

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn header_flood_answers_431() {
    let (handle, join) = spawn(2);
    let addr = handle.addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut head = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..70 {
        head.push_str(&format!("x-flood-{i}: y\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 431 "), "{raw:?}");
    assert!(raw.contains("headers_too_large"), "{raw:?}");
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn overload_is_shed_with_503_and_counted() {
    let mut config = test_config(1);
    config.queue_high_water = 1;
    config.request_deadline = Duration::from_secs(2);
    let (handle, join) = Server::spawn(config).expect("bind test server");
    let addr = handle.addr();

    // Occupy the single worker and the one queue slot with held-open
    // connections that never complete a request.
    let hold = |n: usize| -> Vec<TcpStream> {
        (0..n)
            .map(|_| {
                let mut s = TcpStream::connect(addr).unwrap();
                s.write_all(b"GET /metrics HT").unwrap();
                s
            })
            .collect()
    };
    let mut holders: Vec<TcpStream> = hold(2);

    // Past the high-water mark, bursts are shed by the acceptor itself —
    // immediately, since no worker is free to write these responses. The
    // acceptor closes without reading our request, so tolerate a reset
    // after the response bytes.
    let lossy_request = |path: &str| -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
            }
        }
        String::from_utf8_lossy(&raw).into_owned()
    };
    let mut shed = None;
    let probe_deadline = std::time::Instant::now() + Duration::from_secs(20);
    while std::time::Instant::now() < probe_deadline {
        let raw = lossy_request("/healthz");
        if raw.starts_with("HTTP/1.1 503 ") {
            shed = Some(raw);
            break;
        }
        // A non-shed probe means the overload collapsed — the holders can
        // expire at the request deadline (and a queued probe blocks long
        // enough to eat that whole window under machine load) — so re-arm
        // it before the next attempt. Surplus holders are themselves shed
        // or held, either of which keeps the queue past the mark.
        std::thread::sleep(Duration::from_millis(20));
        holders.extend(hold(2));
    }
    let raw = shed.expect("no request was shed past the high-water mark");
    assert!(raw.contains("retry-after: 1\r\n"), "{raw:?}");
    assert!(raw.contains("overloaded"), "{raw:?}");

    // Release the holders; once a worker frees up, /metrics must report
    // the shed count.
    drop(holders);
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let raw = lossy_request("/metrics");
        if raw.starts_with("HTTP/1.1 200 ") {
            let body = raw.split_once("\r\n\r\n").map_or("", |(_, b)| b);
            let v = Json::parse(body).expect("metrics JSON");
            assert!(
                v.get("requests_shed").and_then(Json::as_u64) >= Some(1),
                "{body}"
            );
            break;
        }
        assert!(std::time::Instant::now() < deadline, "metrics never served");
        std::thread::sleep(Duration::from_millis(50));
    }

    handle.shutdown();
    join.join().unwrap().unwrap();
}

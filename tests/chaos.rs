//! Chaos tests: seeded fault injection against the full pipeline. Every
//! test is deterministic — faults come from seeded injectors, time from a
//! virtual clock (no real sleeps) — so "30% of the sources just died"
//! replays byte-identically on every run.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use mube_core::constraints::Constraints;
use mube_core::qefs::{coverage_fraction, forfeited_coverage, paper_default_qefs};
use mube_core::SourceId;
use mube_exec::{
    probe_characteristics, BreakerConfig, BreakerState, Clock, Executor, FaultInjector, FaultSpec,
    FetchErrorKind, HealthRegistry, Query, RetryPolicy, VirtualClock, WindowBackend,
};
use mube_integration::{ci_tabu, Fixture};
use proptest::prelude::*;

/// Picks the first ⌈rate·k⌉ of `selected` (source order) to hard-fail —
/// deterministic by construction.
fn chaos_sample(selected: &BTreeSet<SourceId>, rate: f64) -> BTreeSet<SourceId> {
    let n = (rate * selected.len() as f64).ceil() as usize;
    selected.iter().copied().take(n).collect()
}

/// A faulted executor over the fixture: hard failures for `failing`,
/// virtual clock, health registry, seeded jitter.
fn chaos_executor(
    fx: &Fixture,
    failing: BTreeSet<SourceId>,
) -> (
    Executor<FaultInjector<WindowBackend>>,
    Arc<HealthRegistry>,
    Arc<dyn Clock>,
) {
    let universe = Arc::clone(&fx.synth.universe);
    let backend =
        FaultInjector::with_hard_failures(WindowBackend::new(&fx.synth), &universe, failing);
    let clock: Arc<dyn Clock> = Arc::new(VirtualClock::default());
    let registry = Arc::new(HealthRegistry::new(
        BreakerConfig::default(),
        Arc::clone(&clock),
    ));
    let executor = Executor::new(universe, backend)
        .with_policy(RetryPolicy::default().with_jitter_seed(9))
        .with_registry(Arc::clone(&registry))
        .with_clock(Arc::clone(&clock));
    (executor, registry, clock)
}

/// The headline chaos scenario: 30% of the *selected* sources fail every
/// attempt. The degradation report must name exactly those sources, the
/// forfeited coverage must equal the PCSA-estimated loss, and the whole
/// report must replay byte-identically.
#[test]
fn thirty_percent_failure_degrades_exactly_and_reproducibly() {
    let fx = Fixture::new(30, 2026);
    let mut session = fx.session(Constraints::with_max_sources(10), 2026);
    let solution = session.run().expect("feasible").clone();
    let selected = solution.sources.clone();
    let failing = chaos_sample(&selected, 0.3);
    assert!(!failing.is_empty() && failing.len() < selected.len());

    // Baseline: the same query with no faults.
    let clean = Executor::new(
        Arc::clone(&fx.synth.universe),
        WindowBackend::new(&fx.synth),
    )
    .execute(&selected, &Query::range(0, u64::MAX));
    assert!(clean.degradation.is_clean());

    let (executor, _registry, clock) = chaos_executor(&fx, failing.clone());
    let report = executor.execute(&selected, &Query::range(0, u64::MAX));

    // The failed-source list matches the injected faults exactly — no
    // false positives, no survivors among the dead.
    assert_eq!(report.degradation.failed_sources(), failing);
    for f in &report.degradation.failed {
        assert_eq!(f.error, FetchErrorKind::Unavailable);
        assert_eq!(f.attempts, RetryPolicy::default().max_attempts);
    }
    // Hard unavailability salvages nothing.
    assert!(report.degradation.degraded.is_empty());

    // The answer is partial: the survivors still delivered, the failed
    // sources' tuples are gone.
    assert!(report.distinct() > 0, "survivors must still answer");
    assert!(report.distinct() < clean.distinct(), "answer must shrink");

    // Forfeited F2/F3 are exactly what the overlap/PCSA machinery says
    // the failed sources were worth.
    let survivors: BTreeSet<SourceId> = selected.difference(&failing).copied().collect();
    let expected_cardinality: u64 = failing
        .iter()
        .map(|&s| {
            fx.synth
                .universe
                .get(s)
                .expect("selected source")
                .cardinality()
        })
        .sum();
    assert_eq!(report.degradation.lost_cardinality, expected_cardinality);
    let expected_coverage = forfeited_coverage(&fx.synth.universe, &selected, &survivors);
    assert!(
        (report.degradation.lost_coverage_fraction - expected_coverage).abs() < 1e-12,
        "reported {} vs recomputed {expected_coverage}",
        report.degradation.lost_coverage_fraction
    );

    // Simulated time only: the clock advanced by exactly the makespan.
    assert_eq!(clock.now(), report.makespan);

    // Same seed, fresh executor: the JSON report is byte-identical.
    let (executor2, _, _) = chaos_executor(&fx, failing);
    let report2 = executor2.execute(&selected, &Query::range(0, u64::MAX));
    assert_eq!(
        report.to_json(&fx.synth.universe),
        report2.to_json(&fx.synth.universe)
    );
}

/// Breakers under chaos: sustained failure opens the breaker, the next
/// execution skips the source outright (zero attempts), and after the
/// cooldown a healthy backend closes it again through half-open.
#[test]
fn breaker_opens_skips_and_recovers_across_executions() {
    let fx = Fixture::new(12, 7);
    let universe = Arc::clone(&fx.synth.universe);
    let victim = universe.source_ids().next().expect("non-empty");
    let selected: BTreeSet<SourceId> = universe.source_ids().take(4).collect();
    let failing: BTreeSet<SourceId> = [victim].into();

    let (executor, registry, clock) = chaos_executor(&fx, failing);
    let query = Query::range(0, u64::MAX);

    // Run 1: the victim exhausts its retries; three consecutive failures
    // trip the breaker.
    let first = executor.execute(&selected, &query);
    assert_eq!(first.degradation.failed_sources(), [victim].into());
    assert_eq!(registry.state(victim), BreakerState::Open);

    // Run 2 (cooldown not yet elapsed): the victim is skipped without a
    // single fetch.
    let second = executor.execute(&selected, &query);
    let skipped = second
        .degradation
        .failed
        .iter()
        .find(|f| f.source == victim)
        .expect("victim still fails");
    assert_eq!(skipped.error, FetchErrorKind::BreakerOpen);
    assert_eq!(skipped.attempts, 0);

    // Cooldown passes and the source comes back: a healthy executor
    // sharing the registry probes it half-open and closes the breaker.
    clock.advance(BreakerConfig::default().cooldown);
    let healed = Executor::new(Arc::clone(&universe), WindowBackend::new(&fx.synth))
        .with_registry(Arc::clone(&registry))
        .with_clock(Arc::clone(&clock));
    let third = healed.execute(&selected, &query);
    assert!(third.degradation.is_clean(), "{:?}", third.degradation);
    assert_eq!(registry.state(victim), BreakerState::Closed);
}

/// Retry backoff runs entirely on the virtual clock: simulated cost grows
/// with every retry while the test itself never sleeps.
#[test]
fn backoff_accrues_on_the_virtual_clock_only() {
    let fx = Fixture::new(8, 3);
    let selected: BTreeSet<SourceId> = fx.synth.universe.source_ids().take(3).collect();
    let failing = selected.clone();

    let wall = std::time::Instant::now();
    let (executor, _registry, clock) = chaos_executor(&fx, failing);
    let report = executor.execute(&selected, &Query::range(0, u64::MAX));

    // Three attempts per source: two backoff waits beyond the fetch
    // costs. The default base backoff alone dwarfs the unavailable-fetch
    // cost, so simulated spend must exceed the raw attempt cost.
    let policy = RetryPolicy::default();
    for f in &report.degradation.failed {
        assert_eq!(f.attempts, policy.max_attempts);
        let min_backoff: Duration = (1..policy.max_attempts)
            // Jitter only shrinks the wait by at most `jitter`; half the
            // un-jittered backoff is a safe floor.
            .map(|n| policy.backoff(n, u64::from(f.source.0)) / 2)
            .sum();
        assert!(
            f.spent >= min_backoff,
            "source {} spent {:?} < backoff floor {:?}",
            f.source,
            f.spent,
            min_backoff
        );
    }
    assert_eq!(clock.now(), report.makespan);
    // Simulated seconds, real milliseconds: nothing actually slept.
    assert!(report.makespan >= Duration::from_millis(150));
    assert!(wall.elapsed() < Duration::from_secs(5));
}

/// The feedback loop closes: after chaos, re-probing measures the truth
/// (failing sources at availability 0), and a re-solve on the refreshed
/// universe with paper-default weights routes around the dead sources.
#[test]
fn reprobe_demotes_failing_sources_and_resolve_routes_around_them() {
    let fx = Fixture::new(30, 2026);
    let mut session = fx.session(Constraints::with_max_sources(8), 2026);
    let solution = session.run().expect("feasible").clone();
    let failing = chaos_sample(&solution.sources, 0.3);

    let (executor, _registry, _clock) = chaos_executor(&fx, failing.clone());
    let refreshed = Arc::new(
        probe_characteristics(&fx.synth.universe, executor.backend(), 3)
            .expect("probing preserves the universe"),
    );
    for source in refreshed.sources() {
        let availability = source
            .characteristic("availability")
            .expect("probe writes availability");
        if failing.contains(&source.id()) {
            assert!(
                availability.abs() < 1e-12,
                "{}: {availability}",
                source.name()
            );
        } else {
            assert!(
                (availability - 1.0).abs() < 1e-12,
                "{}: {availability}",
                source.name()
            );
        }
    }

    // Re-solve on measured availability with the paper's default weights.
    let matcher = Arc::new(mube_match::ClusterMatcher::new(
        Arc::clone(&refreshed),
        mube_match::similarity::JaccardNGram::trigram(),
    ));
    let problem = mube_core::problem::Problem::new(
        Arc::clone(&refreshed),
        matcher,
        paper_default_qefs("availability"),
        Constraints::with_max_sources(8),
    )
    .expect("refreshed universe is solvable");
    let resolved = problem.solve(&ci_tabu(), 2026).expect("feasible");

    let still_failing: Vec<&SourceId> = resolved
        .sources
        .iter()
        .filter(|s| failing.contains(s))
        .collect();
    assert!(
        still_failing.is_empty(),
        "re-solve kept dead sources {still_failing:?}"
    );
    assert!(!resolved.sources.is_empty());
}

/// Reduce case count: every case runs a query execution.
fn chaos_config() -> ProptestConfig {
    ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(chaos_config())]

    /// For every fault seed and rate, degradation only loses ground:
    /// the degraded answer never exceeds the clean one, survivors' PCSA
    /// coverage never exceeds the selection's, and the reported loss
    /// fractions stay in [0, 1].
    #[test]
    fn degraded_coverage_never_exceeds_baseline(
        fault_seed in 0u64..500,
        rate_pct in 1u32..=100,
    ) {
        let fx = Fixture::new(14, 77);
        let selected: BTreeSet<SourceId> =
            fx.synth.universe.source_ids().take(6).collect();
        let query = Query::range(0, u64::MAX);

        let clean = Executor::new(
            Arc::clone(&fx.synth.universe),
            WindowBackend::new(&fx.synth),
        )
        .execute(&selected, &query);

        let spec = FaultSpec::parse(&format!("rate={}", f64::from(rate_pct) / 100.0))
            .expect("valid rate");
        let backend = FaultInjector::new(
            WindowBackend::new(&fx.synth),
            &fx.synth.universe,
            &spec,
            fault_seed,
        );
        let executor = Executor::new(Arc::clone(&fx.synth.universe), backend)
            .with_policy(RetryPolicy::default().with_jitter_seed(fault_seed));
        let report = executor.execute(&selected, &query);

        prop_assert!(report.distinct() <= clean.distinct());
        prop_assert!((0.0..=1.0).contains(&report.degradation.lost_cardinality_fraction));
        prop_assert!((0.0..=1.0).contains(&report.degradation.lost_coverage_fraction));
        let survivors: BTreeSet<SourceId> = selected
            .difference(&report.degradation.failed_sources())
            .copied()
            .collect();
        prop_assert!(
            coverage_fraction(&fx.synth.universe, &survivors)
                <= coverage_fraction(&fx.synth.universe, &selected) + 1e-12
        );
    }
}

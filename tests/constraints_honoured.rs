//! Constraint-enforcement tests across the whole stack: every kind of user
//! constraint from §2.4 must be honoured by the returned solutions.

use std::collections::BTreeSet;

use mube_core::constraints::Constraints;
use mube_core::ga::GlobalAttribute;
use mube_core::problem::CandidateEval;
use mube_core::validate::SolutionValidator;
use mube_core::AttrId;
use mube_core::SourceId;
use mube_integration::{ci_portfolio, ci_tabu, Fixture};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn source_constraints_always_selected() {
    let fx = Fixture::new(40, 20);
    for count in [1usize, 3, 5] {
        let mut rng = StdRng::seed_from_u64(count as u64);
        let pinned = fx.synth.random_unperturbed(count, &mut rng);
        let mut constraints = Constraints::with_max_sources(10);
        constraints.required_sources = pinned.clone();
        let problem = fx.problem(constraints);
        let solution = problem.solve(&ci_tabu(), 20).expect("feasible");
        for p in &pinned {
            assert!(
                solution.sources.contains(p),
                "pinned {p} missing ({count} pins)"
            );
        }
    }
}

#[test]
fn ga_constraints_subsumed_and_sources_implied() {
    let fx = Fixture::new(40, 21);
    let mut rng = StdRng::seed_from_u64(7);
    let sources: Vec<SourceId> = fx.synth.unperturbed.clone();
    let ga = fx
        .synth
        .ground_truth
        .make_ga_constraint(&fx.synth.universe, &sources, 0, 4, &mut rng)
        .expect("concept 0 appears in the bases");
    let constraints = Constraints::with_max_sources(12).require_ga(ga.clone());
    let problem = fx.problem(constraints);
    let solution = problem.solve(&ci_tabu(), 21).expect("feasible");
    assert!(solution.schema.covers_gas(std::slice::from_ref(&ga)));
    for s in ga.sources() {
        assert!(solution.sources.contains(&s));
    }
}

#[test]
fn ga_constraint_bridges_beyond_theta() {
    // Force a GA between two attributes with zero lexical similarity; it
    // must survive even at a high matching threshold.
    let fx = Fixture::new(30, 22);
    let universe = &fx.synth.universe;
    // Find two attributes of different sources with unrelated names.
    let mut pick = None;
    'outer: for a in universe.source(SourceId(0)).attr_ids() {
        for b in universe.source(SourceId(1)).attr_ids() {
            let na = universe.attr_name(a).unwrap();
            let nb = universe.attr_name(b).unwrap();
            if !na.contains(nb) && !nb.contains(na) {
                pick = Some((a, b));
                break 'outer;
            }
        }
    }
    let (a, b): (AttrId, AttrId) = pick.expect("unrelated attribute pair exists");
    let ga = GlobalAttribute::try_new([a, b]).unwrap();
    let constraints = Constraints::with_max_sources(8)
        .theta(0.9)
        .require_ga(ga.clone());
    let problem = fx.problem(constraints);
    let solution = problem.solve(&ci_tabu(), 22).expect("feasible");
    assert!(solution.schema.covers_gas(std::slice::from_ref(&ga)));
}

#[test]
fn max_sources_is_a_hard_bound() {
    let fx = Fixture::new(40, 23);
    for m in [2usize, 5, 15] {
        let problem = fx.problem(Constraints::with_max_sources(m));
        let solution = problem.solve(&ci_tabu(), 23).expect("feasible");
        assert!(
            solution.sources.len() <= m,
            "m={m} but |S|={}",
            solution.sources.len()
        );
    }
}

#[test]
fn beta_bound_holds_for_nonuser_gas() {
    let fx = Fixture::new(40, 24);
    let problem = fx.problem(Constraints::with_max_sources(10).beta(3));
    let solution = problem.solve(&ci_tabu(), 24).expect("feasible");
    for ga in solution.schema.gas() {
        assert!(ga.len() >= 3, "GA below β=3: {:?}", ga);
    }
}

#[test]
fn every_portfolio_member_incumbent_honours_constraints() {
    // Pins, m, θ, β all active at once: not just the portfolio's winner but
    // *every member's* incumbent must describe a solution the independent
    // post-solve validator accepts.
    let fx = Fixture::new(30, 28);
    let mut rng = StdRng::seed_from_u64(28);
    let pinned = fx.synth.random_unperturbed(2, &mut rng);
    let mut constraints = Constraints::with_max_sources(8).theta(0.6).beta(2);
    constraints.required_sources = pinned.clone();
    let problem = fx.problem(constraints);
    let validator = SolutionValidator::for_problem(&problem);

    let run = ci_portfolio(2, 4).run(&problem, 28);
    assert_eq!(run.members.len(), 8);
    for member in &run.members {
        let selection: BTreeSet<SourceId> = member
            .result
            .selected
            .iter()
            .map(|&i| SourceId(i as u32))
            .collect();
        let CandidateEval::Feasible(solution) = problem.evaluate(&selection) else {
            panic!(
                "member {} ({}) ended on an infeasible incumbent {selection:?}",
                member.worker, member.solver
            );
        };
        assert!(
            solution.sources.len() <= 8,
            "member {} broke m: {selection:?}",
            member.worker
        );
        for p in &pinned {
            assert!(
                solution.sources.contains(p),
                "member {} dropped pinned {p}",
                member.worker
            );
        }
        validator.validate(&solution).unwrap_or_else(|e| {
            panic!(
                "member {} ({}) fails post-solve validation: {e:?}",
                member.worker, member.solver
            )
        });
    }
}

#[test]
fn unsatisfiable_constraints_error_cleanly() {
    let fx = Fixture::new(10, 25);
    // More required sources than m: rejected at problem construction.
    let mut c = Constraints::with_max_sources(2);
    for id in fx.synth.universe.source_ids().take(3) {
        c.required_sources.insert(id);
    }
    assert!(c.validate(&fx.synth.universe).is_err());
}

#[test]
fn theta_one_still_matches_identical_names() {
    // At θ = 1.0 only identical names may cluster; perturbed copies share
    // exact names with their bases, so matches still exist.
    let fx = Fixture::new(30, 26);
    let problem = fx.problem(Constraints::with_max_sources(8).theta(1.0));
    let solution = problem.solve(&ci_tabu(), 26).expect("feasible");
    for ga in solution.schema.gas() {
        let names: std::collections::BTreeSet<&str> = ga
            .attrs()
            .iter()
            .map(|&a| fx.synth.universe.attr_name(a).unwrap())
            .collect();
        assert_eq!(names.len(), 1, "θ=1 GA mixes names: {names:?}");
    }
}

//! Leader/follower replication end-to-end: WAL shipping over TCP, ack
//! plumbing, read-only followers, checked (digest-gated) promotion, and
//! semi-sync write acknowledgement — all against real servers on
//! ephemeral ports, driven like external clients.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use mube_core::catalog;
use mube_serve::{Event, FsyncPolicy, Journal, Json, ServeConfig, Server, ServerHandle};
use mube_synth::{generate, SynthConfig};

type Spawned = (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mube-repl-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test data dir");
    dir
}

/// A leader config: journals to `dir`, serves replication on an ephemeral
/// port, ticks heartbeats fast enough for test-speed digest checks.
fn leader_config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        threads: 2,
        max_solve_evaluations: 600,
        data_dir: Some(dir.display().to_string()),
        fsync: FsyncPolicy::Always,
        repl_addr: Some("127.0.0.1:0".to_string()),
        heartbeat_interval: Duration::from_millis(100),
        read_timeout: Duration::from_secs(1),
        ..ServeConfig::default()
    }
}

/// A follower of `leader`: same journal discipline, short read timeout so
/// the replication client cycles quickly in tests.
fn follower_config(dir: &std::path::Path, leader: SocketAddr) -> ServeConfig {
    ServeConfig {
        threads: 2,
        max_solve_evaluations: 600,
        data_dir: Some(dir.display().to_string()),
        fsync: FsyncPolicy::Always,
        follow: Some(leader.to_string()),
        heartbeat_interval: Duration::from_millis(100),
        read_timeout: Duration::from_millis(400),
        ..ServeConfig::default()
    }
}

fn spawn(config: ServeConfig) -> Spawned {
    Server::spawn(config).expect("bind test server")
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    let parsed = Json::parse(&body).unwrap_or_else(|e| panic!("bad JSON body {body:?}: {e}"));
    (status, parsed)
}

fn catalog_text(sources: usize, seed: u64) -> String {
    catalog::to_text(&generate(&SynthConfig::small(sources), seed).universe)
}

fn upload_catalog(addr: SocketAddr, sources: usize, seed: u64) -> u64 {
    let mut j = mube_core::jsonw::JsonBuf::new();
    j.begin_obj();
    j.key("catalog").str_value(&catalog_text(sources, seed));
    j.end_obj();
    let (status, body) = request(addr, "POST", "/catalogs", &j.finish());
    assert_eq!(status, 201, "{body:?}");
    body.get("catalog").and_then(Json::as_u64).expect("id")
}

fn create_session(addr: SocketAddr, catalog: u64, seed: u64) -> u64 {
    let body = format!(
        "{{\"catalog\":{catalog},\"seed\":{seed},\"max_sources\":4,\"beta\":1,\"theta\":0.75}}"
    );
    let (status, v) = request(addr, "POST", "/sessions", &body);
    assert_eq!(status, 201, "{v:?}");
    v.get("session").and_then(Json::as_u64).expect("session id")
}

fn healthz(addr: SocketAddr) -> Json {
    let (status, v) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{v:?}");
    v
}

/// Polls until `pred(healthz)` holds or the deadline passes (then panics
/// with the last body).
fn wait_healthz(addr: SocketAddr, what: &str, pred: impl Fn(&Json) -> bool) -> Json {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut last = Json::Obj(Vec::new());
    while Instant::now() < deadline {
        last = healthz(addr);
        if pred(&last) {
            return last;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("timed out waiting for {what}; last healthz: {last:?}");
}

fn err_code(v: &Json) -> &str {
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or("")
}

#[test]
fn follower_applies_the_leader_stream_and_refuses_writes() {
    let (ldir, fdir) = (fresh_dir("ship-l"), fresh_dir("ship-f"));
    let (leader, ljoin) = spawn(leader_config(&ldir));
    let repl = leader.repl_addr().expect("leader repl addr");
    let (follower, fjoin) = spawn(follower_config(&fdir, repl));

    // Traffic on the leader: catalog, session, solve.
    let cat = upload_catalog(leader.addr(), 8, 42);
    let sid = create_session(leader.addr(), cat, 7);
    let (status, solved) = request(
        leader.addr(),
        "POST",
        &format!("/sessions/{sid}/solve"),
        "{}",
    );
    assert_eq!(status, 200, "{solved:?}");
    let leader_lsn = healthz(leader.addr())
        .get("lsn")
        .and_then(Json::as_u64)
        .expect("leader lsn");
    assert!(leader_lsn >= 3, "catalog+session+solve journaled");

    // The follower converges to the same LSN and digest.
    let fh = wait_healthz(follower.addr(), "follower catch-up", |h| {
        h.get("lsn").and_then(Json::as_u64) == Some(leader_lsn)
    });
    assert_eq!(fh.get("role").and_then(Json::as_str), Some("follower"));
    let ldigest = healthz(leader.addr())
        .get("digest")
        .and_then(Json::as_str)
        .map(str::to_string)
        .expect("leader digest");
    assert_eq!(
        fh.get("digest").and_then(Json::as_str),
        Some(ldigest.as_str()),
        "replicated state must be byte-identical"
    );

    // Read endpoints work on the follower; the replicated session explains.
    // Polled: the follower journals a frame (which advances healthz lsn and
    // digest) before replaying it into the store, so a read landing in that
    // window still sees the pre-apply session for an instant.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, explain) = request(
            follower.addr(),
            "GET",
            &format!("/sessions/{sid}/explain"),
            "",
        );
        if status == 200 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replicated session never became readable: {status} {explain:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Writes are refused with the leader hint.
    let (status, refused) = request(follower.addr(), "POST", "/catalogs", "{\"catalog\":\"x\"}");
    assert_eq!(status, 409, "{refused:?}");
    assert_eq!(err_code(&refused), "not_leader");
    assert_eq!(
        refused
            .get("error")
            .and_then(|e| e.get("leader"))
            .and_then(Json::as_str),
        Some(repl.to_string().as_str())
    );

    // Leader-side metrics expose the replication block. The follower
    // count is polled: under load a delayed heartbeat can trip the
    // follower's read timeout and cause a momentary reconnect.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (_, metrics) = request(leader.addr(), "GET", "/metrics", "");
        let repl_block = metrics.get("repl").expect("repl block");
        assert_eq!(
            repl_block.get("role").and_then(Json::as_str),
            Some("leader")
        );
        if repl_block.get("followers").and_then(Json::as_u64) == Some(1)
            && repl_block.get("frames_shipped").and_then(Json::as_u64) >= Some(3)
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "leader never settled on one follower: {metrics:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    follower.shutdown();
    leader.shutdown();
    fjoin.join().unwrap().unwrap();
    ljoin.join().unwrap().unwrap();
}

#[test]
fn promotion_is_digest_checked_and_flips_the_role() {
    let (ldir, fdir) = (fresh_dir("promote-l"), fresh_dir("promote-f"));
    let (leader, ljoin) = spawn(leader_config(&ldir));
    let repl = leader.repl_addr().expect("leader repl addr");
    let (follower, fjoin) = spawn(follower_config(&fdir, repl));

    // A promote on the leader itself is refused.
    let (status, v) = request(leader.addr(), "POST", "/admin/promote", "");
    assert_eq!(status, 409, "{v:?}");
    assert_eq!(err_code(&v), "already_leader");

    let cat = upload_catalog(leader.addr(), 6, 11);
    create_session(leader.addr(), cat, 3);
    let leader_lsn = healthz(leader.addr())
        .get("lsn")
        .and_then(Json::as_u64)
        .expect("lsn");
    let ldigest = healthz(leader.addr())
        .get("digest")
        .and_then(Json::as_str)
        .map(str::to_string)
        .expect("digest");

    // Wait for catch-up AND a passed digest check (verified lsn).
    wait_healthz(follower.addr(), "digest verification", |h| {
        h.get("lsn").and_then(Json::as_u64) == Some(leader_lsn)
    });

    // Kill the leader the hard-stop way a failover would see.
    leader.shutdown();
    ljoin.join().unwrap().unwrap();

    // Promote the follower and check the digest proof.
    let (status, promoted) = request(follower.addr(), "POST", "/admin/promote", "");
    assert_eq!(status, 200, "{promoted:?}");
    assert_eq!(promoted.get("promoted").and_then(Json::as_bool), Some(true));
    assert_eq!(promoted.get("lsn").and_then(Json::as_u64), Some(leader_lsn));
    assert_eq!(
        promoted.get("digest").and_then(Json::as_str),
        Some(ldigest.as_str()),
        "promoted state must carry the leader's digest"
    );

    // The new leader serves writes.
    wait_healthz(follower.addr(), "promoted role", |h| {
        h.get("role").and_then(Json::as_str) == Some("leader")
    });
    let cat2 = upload_catalog(follower.addr(), 5, 99);
    assert!(cat2 > cat);

    // Promoting again is refused.
    let (status, again) = request(follower.addr(), "POST", "/admin/promote", "");
    assert_eq!(status, 409, "{again:?}");
    assert_eq!(err_code(&again), "already_leader");

    follower.shutdown();
    fjoin.join().unwrap().unwrap();
}

#[test]
fn graceful_drain_ships_the_tail_before_exit() {
    let (ldir, fdir) = (fresh_dir("drain-l"), fresh_dir("drain-f"));
    let (leader, ljoin) = spawn(leader_config(&ldir));
    let repl = leader.repl_addr().expect("leader repl addr");
    let (follower, fjoin) = spawn(follower_config(&fdir, repl));

    // Make sure the follower is attached before the burst, then shut the
    // leader down immediately after the last write: the drain path must
    // ship the in-flight tail rather than lose it.
    wait_healthz(leader.addr(), "follower attach", |_| {
        leader
            .stats()
            .repl
            .as_ref()
            .is_some_and(|r| r.followers > 0)
    });
    let cat = upload_catalog(leader.addr(), 6, 5);
    create_session(leader.addr(), cat, 1);
    let leader_lsn = healthz(leader.addr())
        .get("lsn")
        .and_then(Json::as_u64)
        .expect("lsn");
    leader.shutdown();
    ljoin.join().unwrap().unwrap();

    wait_healthz(follower.addr(), "tail shipped at drain", |h| {
        h.get("lsn").and_then(Json::as_u64) == Some(leader_lsn)
    });

    follower.shutdown();
    fjoin.join().unwrap().unwrap();
}

#[test]
fn semi_sync_gates_writes_on_a_durable_follower_ack() {
    let ldir = fresh_dir("semisync-l");
    let mut config = leader_config(&ldir);
    config.repl_sync = true;
    config.repl_sync_timeout = Duration::from_millis(400);
    let (leader, ljoin) = spawn(config);
    let repl = leader.repl_addr().expect("leader repl addr");

    // No follower attached: the write is locally durable but degrades to
    // a 503 so the client knows there is no second copy.
    let mut j = mube_core::jsonw::JsonBuf::new();
    j.begin_obj();
    j.key("catalog").str_value(&catalog_text(6, 17));
    j.end_obj();
    let (status, v) = request(leader.addr(), "POST", "/catalogs", &j.finish());
    assert_eq!(status, 503, "{v:?}");
    assert_eq!(err_code(&v), "replication_timeout");
    let journaled = healthz(leader.addr())
        .get("lsn")
        .and_then(Json::as_u64)
        .expect("lsn");
    assert_eq!(journaled, 1, "the degraded write is still locally durable");

    // With a follower attached, the same write succeeds — and by the
    // semi-sync invariant the follower has durably applied it by the time
    // the response arrives.
    let fdir = fresh_dir("semisync-f");
    let (follower, fjoin) = spawn(follower_config(&fdir, repl));
    wait_healthz(leader.addr(), "follower attach", |_| {
        leader
            .stats()
            .repl
            .as_ref()
            .is_some_and(|r| r.followers > 0)
    });
    let cat = upload_catalog(leader.addr(), 6, 18);
    let acked = follower.stats().repl.expect("follower repl stats");
    assert!(
        acked.last_lsn >= 2,
        "semi-sync acked before the follower applied: {acked:?}"
    );
    assert!(cat >= 2);

    follower.shutdown();
    leader.shutdown();
    fjoin.join().unwrap().unwrap();
    ljoin.join().unwrap().unwrap();
}

#[test]
fn diverged_follower_is_quarantined_and_refuses_promotion() {
    let (ldir, fdir) = (fresh_dir("diverge-l"), fresh_dir("diverge-f"));

    // Pre-seed both journals at LSN 1 with *different* events: the
    // follower believes it is caught up, but its state is not the
    // leader's. The first heartbeat's digest check must catch this.
    {
        let (j, _, _) = Journal::open(&ldir, FsyncPolicy::Always, 256).unwrap();
        j.append(Event::CatalogCreate {
            id: 1,
            text: catalog_text(6, 1),
        })
        .unwrap();
    }
    {
        let (j, _, _) = Journal::open(&fdir, FsyncPolicy::Always, 256).unwrap();
        j.append(Event::CatalogCreate {
            id: 1,
            text: catalog_text(6, 2),
        })
        .unwrap();
    }

    let (leader, ljoin) = spawn(leader_config(&ldir));
    let repl = leader.repl_addr().expect("leader repl addr");
    let (follower, fjoin) = spawn(follower_config(&fdir, repl));

    let fh = wait_healthz(follower.addr(), "divergence detection", |h| {
        h.get("follower")
            .and_then(|f| f.get("diverged"))
            .and_then(Json::as_bool)
            == Some(true)
    });
    assert_eq!(fh.get("role").and_then(Json::as_str), Some("follower"));

    // Quarantined: the marker exists and promotion is refused.
    assert!(fdir.join("diverged.marker").exists());
    let (status, refused) = request(follower.addr(), "POST", "/admin/promote", "");
    assert_eq!(status, 409, "{refused:?}");
    assert_eq!(err_code(&refused), "diverged");

    // The quarantine survives a restart of the follower process.
    follower.shutdown();
    fjoin.join().unwrap().unwrap();
    let (follower2, fjoin2) = spawn(follower_config(&fdir, repl));
    let (status, refused) = request(follower2.addr(), "POST", "/admin/promote", "");
    assert_eq!(status, 409, "{refused:?}");
    assert_eq!(err_code(&refused), "diverged");

    follower2.shutdown();
    leader.shutdown();
    fjoin2.join().unwrap().unwrap();
    ljoin.join().unwrap().unwrap();
}

#[test]
fn follower_auto_promotes_after_leader_silence() {
    let (ldir, fdir) = (fresh_dir("auto-l"), fresh_dir("auto-f"));
    let (leader, ljoin) = spawn(leader_config(&ldir));
    let repl = leader.repl_addr().expect("leader repl addr");
    let mut fconfig = follower_config(&fdir, repl);
    fconfig.promote_timeout = Duration::from_millis(600);
    let (follower, fjoin) = spawn(fconfig);

    let cat = upload_catalog(leader.addr(), 6, 23);
    let leader_lsn = healthz(leader.addr())
        .get("lsn")
        .and_then(Json::as_u64)
        .expect("lsn");
    wait_healthz(follower.addr(), "catch-up before failover", |h| {
        h.get("lsn").and_then(Json::as_u64) == Some(leader_lsn)
    });

    // Leader dies; the follower must self-promote after the timeout.
    leader.shutdown();
    ljoin.join().unwrap().unwrap();
    wait_healthz(follower.addr(), "auto-promotion", |h| {
        h.get("role").and_then(Json::as_str) == Some("leader")
    });

    // The promoted node serves writes over the replicated state.
    let sid = create_session(follower.addr(), cat, 9);
    let (status, v) = request(
        follower.addr(),
        "POST",
        &format!("/sessions/{sid}/solve"),
        "{}",
    );
    assert_eq!(status, 200, "{v:?}");

    follower.shutdown();
    fjoin.join().unwrap().unwrap();
}

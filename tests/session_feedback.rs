//! Tests of the iterative feedback loop — the paper's core interaction
//! model: output of one iteration becomes input constraints of the next.

use mube_core::constraints::Constraints;
use mube_integration::Fixture;

#[test]
fn adopted_ga_persists_across_iterations() {
    let fx = Fixture::new(35, 10);
    let mut session = fx.session(Constraints::with_max_sources(10), 10);
    session.run().expect("feasible");
    let adopted = session.latest().unwrap().ga(0).cloned().expect("has a GA");
    session.adopt_ga(0).expect("in range");
    for _ in 0..2 {
        let sol = session.run().expect("still feasible").clone();
        assert!(
            sol.schema.covers_gas(std::slice::from_ref(&adopted)),
            "adopted GA must be subsumed by every later schema"
        );
        // And its sources must stay selected (implied source constraints).
        for s in adopted.sources() {
            assert!(sol.sources.contains(&s));
        }
    }
}

#[test]
fn pinned_source_persists_until_unpinned() {
    let fx = Fixture::new(35, 11);
    let mut session = fx.session(Constraints::with_max_sources(8), 11);
    let victim = fx.synth.universe.source_ids().last().unwrap();
    session.pin_source(victim).expect("exists");
    let sol = session.run().expect("feasible").clone();
    assert!(sol.sources.contains(&victim));

    session.unpin_source(victim).expect("exists");
    // Unpinning merely allows its removal; it doesn't force it.
    let sol2 = session.run().expect("feasible").clone();
    assert!(sol2.sources.len() <= 8);
}

#[test]
fn reweighting_biases_the_solution() {
    // Figure 8's premise: pushing the cardinality weight up should not
    // *decrease* the cardinality of the chosen solution.
    let fx = Fixture::new(40, 12);
    let mut session = fx.session(Constraints::with_max_sources(8), 12);
    let base = session.run().expect("feasible").clone();
    let base_card: u64 = base
        .sources
        .iter()
        .map(|&s| fx.synth.universe.source(s).cardinality())
        .sum();

    session.set_weight("cardinality", 0.9).expect("QEF exists");
    let heavy = session.run().expect("feasible").clone();
    let heavy_card: u64 = heavy
        .sources
        .iter()
        .map(|&s| fx.synth.universe.source(s).cardinality())
        .sum();
    assert!(
        heavy_card >= base_card,
        "cardinality-weighted run selected fewer tuples: {heavy_card} < {base_card}"
    );
}

#[test]
fn theta_feedback_controls_schema_granularity() {
    let fx = Fixture::new(30, 13);
    let mut session = fx.session(Constraints::with_max_sources(8), 13);
    let strict = session.run().expect("feasible").schema.len();

    // Lowering θ lets weaker matches cluster: at least as many merges are
    // possible, so average GA count should not collapse. (The exact count
    // varies with the optimizer's choice of sources; we only require the
    // run to stay feasible and the constraint to take effect.)
    session.set_theta(0.30).expect("valid");
    assert_eq!(session.constraints().theta, 0.30);
    let loose_sol = session.run().expect("feasible").clone();
    assert!(loose_sol.schema.len() + strict > 0);
    // All GAs must meet the *new* θ, checked by the matcher's contract.
    assert!(loose_sol.qef_score("matching").unwrap() >= 0.30 - 1e-9);
}

#[test]
fn history_and_diffs_accumulate() {
    let fx = Fixture::new(25, 14);
    let mut session = fx.session(Constraints::with_max_sources(6), 14);
    assert!(session.last_diff().is_none());
    session.run().expect("feasible");
    assert!(session.last_diff().is_none(), "one iteration has no diff");
    session.set_weight("coverage", 0.5).expect("QEF exists");
    session.run().expect("feasible");
    assert_eq!(session.history().len(), 2);
    assert!(session.last_diff().is_some());
}

#[test]
fn same_session_seed_reproduces_whole_session() {
    let run_session = || {
        let fx = Fixture::new(30, 15);
        let mut session = fx.session(Constraints::with_max_sources(8), 99);
        session.run().expect("feasible");
        session.pin_source(mube_core::SourceId(3)).expect("exists");
        session.run().expect("feasible");
        session
            .history()
            .iter()
            .map(|s| (s.sources.clone(), s.quality))
            .collect::<Vec<_>>()
    };
    assert_eq!(run_session(), run_session());
}

#[test]
fn conflicting_feedback_is_rejected_and_session_survives() {
    let fx = Fixture::new(20, 16);
    let mut session = fx.session(Constraints::with_max_sources(3), 16);
    // Pin three sources the matcher can actually mediate together (an
    // arbitrary triple may share no θ-similar attributes, which makes the
    // fully pinned problem infeasible for *any* solver — that would test
    // the generator's luck, not the feedback loop).
    let ids: Vec<_> = fx.synth.universe.source_ids().collect();
    let probe = fx.problem(Constraints::with_max_sources(3));
    let triple = ids
        .iter()
        .flat_map(|&a| ids.iter().map(move |&b| (a, b)))
        .flat_map(|(a, b)| ids.iter().map(move |&c| [a, b, c]))
        .filter(|[a, b, c]| a < b && b < c)
        .find(|t| {
            let cand: std::collections::BTreeSet<_> = t.iter().copied().collect();
            match probe.evaluate(&cand) {
                mube_core::CandidateEval::Feasible(sol) => sol.schema.is_valid_on(&cand),
                mube_core::CandidateEval::Infeasible => false,
            }
        })
        .expect("some triple of 20 sources is mediable");
    // Pinning up to m sources must succeed...
    for id in triple {
        session.pin_source(id).expect("within m");
    }
    // ...pinning more sources than m must fail...
    let overflow = ids.iter().find(|id| !triple.contains(id)).unwrap();
    assert!(session.pin_source(*overflow).is_err());
    // ...and the session must still be usable afterwards.
    let sol = session.run().expect("feasible").clone();
    assert_eq!(sol.sources.len(), 3);
}

#[test]
fn continuity_keeps_small_edits_small() {
    // With continuity, a tiny weight nudge should barely move the solution;
    // without it, the re-solve is free to land elsewhere.
    let build = |continuity: bool| {
        let fx = Fixture::new(40, 30);
        let problem = fx.problem(Constraints::with_max_sources(10));
        let session = mube_core::Session::new(problem, Box::new(mube_integration::ci_tabu()), 30);
        (
            fx,
            if continuity {
                session.with_continuity()
            } else {
                session
            },
        )
    };
    let (_fx, mut with) = build(true);
    let first = with.run().expect("feasible").clone();
    with.set_weight("coverage", 0.21).expect("QEF exists"); // tiny nudge
    let second = with.run().expect("feasible").clone();
    // The warm start guarantees the old solution is the incumbent's
    // starting point, so the re-solve can only match or beat it under the
    // new weights.
    let old_under_new = match with.problem().evaluate(&first.sources) {
        mube_core::CandidateEval::Feasible(sol) => sol.quality,
        mube_core::CandidateEval::Infeasible => panic!("old solution stays feasible"),
    };
    assert!(second.quality >= old_under_new - 1e-9);
    // And the drift from a negligible nudge stays small.
    let diff = first.diff(&second);
    assert!(diff.sources_changed() <= 4, "drifted too far: {diff:?}");
}

#[test]
fn continuity_still_honours_new_constraints() {
    let fx = Fixture::new(30, 31);
    let problem = fx.problem(Constraints::with_max_sources(6));
    let mut session = mube_core::Session::new(problem, Box::new(mube_integration::ci_tabu()), 31)
        .with_continuity();
    session.run().expect("feasible");
    // Pin a source that was (likely) not selected; the warm start must be
    // repaired to include it.
    let unselected = fx
        .synth
        .universe
        .source_ids()
        .find(|s| !session.latest().unwrap().sources.contains(s))
        .expect("some source is unselected");
    session.pin_source(unselected).expect("valid");
    let sol = session.run().expect("feasible");
    assert!(sol.sources.contains(&unselected));
    assert!(sol.sources.len() <= 6);
}

//! Iterative exploration of a paper-scale Books universe — the §7 workload
//! driven through the session API the way a user would drive the GUI.
//!
//! Generates 200 synthetic book-search sources (50 conformant + perturbed
//! copies, Zipf cardinalities, General/Specialty data, MTTF), then runs a
//! three-iteration feedback session and scores each iteration's schema
//! against the generator's ground truth.
//!
//! Run with: `cargo run --release -p mube-examples --bin books_exploration`

use std::sync::Arc;

use mube_core::constraints::Constraints;
use mube_core::problem::Problem;
use mube_core::qefs::paper_default_qefs;
use mube_core::session::Session;
use mube_examples::{section, show_diff};
use mube_match::similarity::JaccardNGram;
use mube_match::ClusterMatcher;
use mube_opt::TabuSearch;
use mube_synth::{generate, SynthConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    section("Generating the universe (200 sources, paper's §7.1 recipe)");
    let synth = generate(&SynthConfig::paper(200), 2007);
    let universe = Arc::clone(&synth.universe);
    println!(
        "{} sources, {} attributes, {} total tuples, exact distinct tuples: {}",
        universe.len(),
        universe.total_attrs(),
        universe.total_cardinality(),
        synth.exact_distinct_universe(),
    );

    let matcher = Arc::new(ClusterMatcher::new(
        Arc::clone(&universe),
        JaccardNGram::trigram(),
    ));
    println!(
        "similarity cache: {} distinct attribute names, {} bytes",
        matcher.cache().distinct_names(),
        matcher.cache().matrix_bytes()
    );

    let problem = Problem::new(
        Arc::clone(&universe),
        matcher,
        paper_default_qefs("mttf"),
        Constraints::with_max_sources(20), // paper defaults: θ=0.75, β=2
    )
    .expect("constraints are valid");
    let mut session = Session::new(problem, Box::new(TabuSearch::default()), 1);

    let score = |label: &str, solution: &mube_core::Solution| {
        let report = synth
            .ground_truth
            .evaluate(&universe, &solution.sources, &solution.schema);
        println!(
            "{label}: Q={:.4}, {} sources, {} GAs | true GAs {} of {} present, \
             {} attrs covered, {} missed, {} false",
            solution.quality,
            solution.sources.len(),
            solution.schema.len(),
            report.true_gas,
            report.concepts_present,
            report.attrs_in_true_gas,
            report.true_gas_missed,
            report.false_gas,
        );
    };

    section("Iteration 1 — unconstrained");
    let first = session.run().expect("feasible").clone();
    score("baseline", &first);

    // Feedback: the matcher at θ=0.75 can't bridge every naming variant of
    // a concept. Hand it an accurate example for the first concept it
    // missed, built from the ground truth (playing the knowledgeable user).
    section("Iteration 2 — bridge a missed concept by example");
    let mut rng = StdRng::seed_from_u64(99);
    let report = synth
        .ground_truth
        .evaluate(&universe, &first.sources, &first.schema);
    if report.true_gas_missed > 0 {
        let found: std::collections::BTreeSet<usize> = first
            .schema
            .gas()
            .iter()
            .filter_map(|ga| match synth.ground_truth.classify(ga) {
                mube_synth::ground_truth::GaClass::True(c) => Some(c),
                _ => None,
            })
            .collect();
        let present = synth
            .ground_truth
            .concepts_present(&universe, &first.sources, 2);
        let missed = present.iter().copied().find(|c| !found.contains(c));
        if let Some(concept) = missed {
            let sources: Vec<_> = first.sources.iter().copied().collect();
            if let Some(ga) = synth
                .ground_truth
                .make_ga_constraint(&universe, &sources, concept, 3, &mut rng)
            {
                println!(
                    "teaching concept `{}` with example {}",
                    mube_synth::concepts::concept(concept).canonical,
                    ga.display(&universe)
                );
                session.require_ga(ga).expect("constraint is valid");
            }
        }
    } else {
        println!("nothing missed — pinning the largest selected source instead");
        let largest = *first
            .sources
            .iter()
            .max_by_key(|&&s| universe.source(s).cardinality())
            .expect("non-empty");
        session.pin_source(largest).expect("source exists");
    }
    let second = session.run().expect("feasible").clone();
    score("after example", &second);
    show_diff(&first, &second);

    // Feedback: the user decides coverage matters more than reliability.
    section("Iteration 3 — value coverage over reliability");
    session.set_weight("coverage", 0.45).expect("QEF exists");
    let third = session.run().expect("feasible").clone();
    score("after re-weighting", &third);
    show_diff(&second, &third);
    println!(
        "coverage score moved {:.4} → {:.4}",
        second.qef_score("coverage").unwrap_or(0.0),
        third.qef_score("coverage").unwrap_or(0.0)
    );

    section("Summary");
    for (i, s) in session.history().iter().enumerate() {
        println!(
            "iteration {}: Q={:.4}, |S|={}, GAs={}, evals={}",
            i + 1,
            s.quality,
            s.sources.len(),
            s.schema.len(),
            s.evaluations
        );
    }
}

//! Quickstart: build a small universe by hand, pose the `µBE` optimization
//! problem, run one iteration, then refine it with feedback.
//!
//! Run with: `cargo run --release -p mube-examples --bin quickstart`

use std::sync::Arc;

use mube_core::constraints::Constraints;
use mube_core::problem::Problem;
use mube_core::qefs::data_only_qefs;
use mube_core::schema::Schema;
use mube_core::session::Session;
use mube_core::source::{SourceSpec, Universe};
use mube_examples::{section, show, show_diff};
use mube_match::similarity::JaccardNGram;
use mube_match::ClusterMatcher;
use mube_opt::TabuSearch;
use mube_sketch::pcsa::{PcsaConfig, PcsaSignature};

/// Builds a PCSA signature for a range of (synthetic) tuple ids.
fn signature(tuples: std::ops::Range<u64>) -> PcsaSignature {
    let mut sig = PcsaSignature::new(PcsaConfig::default_for_sources(7));
    for t in tuples {
        sig.insert(t);
    }
    sig
}

fn main() {
    // 1. Describe the candidate sources: schema, cardinality, and a PCSA
    //    hash signature of their tuples (what a cooperating source exports).
    let mut builder = Universe::builder();
    builder.add_source(
        SourceSpec::new("books-r-us", Schema::new(["title", "author", "price"]))
            .cardinality(60_000)
            .signature(signature(0..60_000)),
    );
    builder.add_source(
        SourceSpec::new(
            "libropolis",
            Schema::new(["book title", "author name", "isbn"]),
        )
        .cardinality(45_000)
        .signature(signature(40_000..85_000)),
    );
    builder.add_source(
        SourceSpec::new(
            "tome-depot",
            Schema::new(["title", "writer", "price range"]),
        )
        .cardinality(80_000)
        .signature(signature(80_000..160_000)),
    );
    builder.add_source(
        SourceSpec::new(
            "mirror-of-books-r-us",
            Schema::new(["title", "author", "price"]),
        )
        .cardinality(60_000)
        .signature(signature(0..60_000)), // same data as books-r-us!
    );
    let universe = Arc::new(builder.build().expect("universe is well-formed"));

    // 2. Pose the optimization problem: choose at most 3 sources, match
    //    attribute names with the paper's 3-gram Jaccard measure at θ=0.3.
    let matcher = Arc::new(ClusterMatcher::new(
        Arc::clone(&universe),
        JaccardNGram::trigram(),
    ));
    let problem = Problem::new(
        Arc::clone(&universe),
        matcher,
        data_only_qefs(),
        Constraints::with_max_sources(3).theta(0.3),
    )
    .expect("constraints are valid");

    // 3. Run one µBE iteration. With the default weights the mirror of
    //    books-r-us is likely to be selected: its duplicated attribute
    //    names keep matching quality at a perfect 1.0, which outweighs the
    //    redundancy penalty. The user notices — and steers.
    let mut session = Session::new(problem, Box::new(TabuSearch::default()), 42);
    section("Iteration 1 — unconstrained");
    let first = session.run().expect("a feasible solution exists").clone();
    show(&universe, &first);

    // 4. Feedback: duplicated data bothers this user. Turn the redundancy
    //    dimension up; the mirror should no longer pay its way.
    section("Iteration 2 — redundancy matters more");
    session.set_weight("redundancy", 0.6).expect("QEF exists");
    let second = session.run().expect("still feasible").clone();
    show(&universe, &second);
    show_diff(&first, &second);
    let books = universe.source_by_name("books-r-us").unwrap().id();
    let mirror = universe
        .source_by_name("mirror-of-books-r-us")
        .unwrap()
        .id();
    assert!(
        !(second.sources.contains(&books) && second.sources.contains(&mirror)),
        "with redundancy at 0.6, a source and its mirror should not both be selected"
    );

    // 5. More feedback: insist on libropolis (it has ISBNs) and adopt the
    //    first GA of the output as a constraint for the next round —
    //    output format == input format, so this is one call.
    section("Iteration 3 — pin libropolis, adopt GA 0");
    session
        .pin_source_by_name("libropolis")
        .expect("libropolis exists");
    session.adopt_ga(0).expect("solution has a GA 0");
    let third = session.run().expect("still feasible").clone();
    show(&universe, &third);
    show_diff(&second, &third);
    assert!(third
        .sources
        .contains(&universe.source_by_name("libropolis").unwrap().id()));

    section("Session history");
    for (i, s) in session.history().iter().enumerate() {
        println!(
            "iteration {}: Q = {:.4}, {} sources, {} GAs",
            i + 1,
            s.quality,
            s.sources.len(),
            s.schema.len()
        );
    }
}

//! Dataspace scenario: sources from several domains in one universe.
//!
//! The paper's introduction motivates `µBE` with dataspaces and ad-hoc
//! mashups, where a discovery mechanism returns sources spanning *multiple*
//! topics. This example mixes Books and Movies sources (two of the four
//! BAMM domains) into one universe and shows that:
//!
//! 1. the mediated schema never merges concepts across domains (no false
//!    GAs under the ground truth) — the clustering discovers the domain
//!    boundary on its own, and
//! 2. a user who decides the task is really "integrate movie sources" can
//!    focus the system with a handful of source constraints and a tighter
//!    source budget.
//!
//! Run with: `cargo run --release -p mube-examples --bin dataspace`

use std::collections::BTreeMap;
use std::sync::Arc;

use mube_core::constraints::Constraints;
use mube_core::problem::Problem;
use mube_core::qefs::paper_default_qefs;
use mube_core::session::Session;
use mube_core::SourceId;
use mube_examples::section;
use mube_match::similarity::JaccardNGram;
use mube_match::ClusterMatcher;
use mube_opt::TabuSearch;
use mube_synth::domains::DomainKind;
use mube_synth::{generate_mixed, SynthConfig};

/// Which domain a source descends from (even index = Books, odd = Movies —
/// `generate_mixed` cycles domains).
fn domain_of(source: SourceId) -> DomainKind {
    if source.index().is_multiple_of(2) {
        DomainKind::Books
    } else {
        DomainKind::Movies
    }
}

fn main() {
    section("Generating a mixed Books + Movies universe (120 sources)");
    let synth = generate_mixed(
        &SynthConfig::paper(120),
        &[DomainKind::Books, DomainKind::Movies],
        2007,
    );
    let universe = Arc::clone(&synth.universe);
    let matcher = Arc::new(ClusterMatcher::new(
        Arc::clone(&universe),
        JaccardNGram::trigram(),
    ));
    let problem = Problem::new(
        Arc::clone(&universe),
        matcher,
        paper_default_qefs("mttf"),
        Constraints::with_max_sources(16),
    )
    .expect("constraints are valid");
    let mut session = Session::new(problem, Box::new(TabuSearch::default()), 7);

    let describe = |label: &str, solution: &mube_core::Solution| {
        let mut by_domain: BTreeMap<&str, usize> = BTreeMap::new();
        for &s in &solution.sources {
            *by_domain.entry(domain_of(s).name()).or_insert(0) += 1;
        }
        let report = synth
            .ground_truth
            .evaluate(&universe, &solution.sources, &solution.schema);
        println!(
            "{label}: Q={:.4}, sources by domain {:?}, {} GAs, {} true / {} false",
            solution.quality,
            by_domain,
            solution.schema.len(),
            report.true_gas,
            report.false_gas,
        );
        assert_eq!(
            report.false_gas, 0,
            "concepts must never merge across domains"
        );
    };

    section("Iteration 1 — let µBE pick freely");
    let first = session.run().expect("feasible").clone();
    describe("mixed", &first);

    // Every GA must be domain-pure: all its sources on one side.
    for ga in first.schema.gas() {
        let kinds: std::collections::BTreeSet<&str> =
            ga.sources().map(|s| domain_of(s).name()).collect();
        assert_eq!(
            kinds.len(),
            1,
            "GA spans domains: {}",
            ga.display(&universe)
        );
    }
    println!("every GA is domain-pure ✓");

    section("Iteration 2 — the user decides this is a movies task");
    // The QEFs are deliberately domain-agnostic (coverage and cardinality
    // measure tuples, not topics), so topic focus is the *user's* call:
    // pin a few known-good movie sites and tighten the source budget so
    // the pins dominate the selection.
    let movie_pins: Vec<SourceId> = synth
        .unperturbed
        .iter()
        .copied()
        .filter(|&s| domain_of(s) == DomainKind::Movies)
        .take(5)
        .collect();
    session.set_max_sources(10).expect("valid");
    for &pin in &movie_pins {
        session.pin_source(pin).expect("source exists");
    }
    let second = session.run().expect("feasible").clone();
    describe("focused", &second);
    for pin in &movie_pins {
        assert!(second.sources.contains(pin), "pinned movie source missing");
    }
    let movies_after = second
        .sources
        .iter()
        .filter(|&&s| domain_of(s) == DomainKind::Movies)
        .count();
    println!(
        "movie sources now {movies_after} of {} selected (≥ {} pinned)",
        second.sources.len(),
        movie_pins.len()
    );

    section("Final mediated schema");
    print!("{}", second.schema.display(&universe));
}

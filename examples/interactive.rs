//! A terminal REPL standing in for the paper's GUI (Figure 4).
//!
//! Exposes the same interaction verbs the `µBE` interface offers: run an
//! iteration, inspect the solution, pin sources, promote output GAs into
//! constraints, bridge attributes by example, and re-weight the quality
//! dimensions. Input is line-based, so it can be driven by a script:
//!
//! ```text
//! printf 'run\nshow\npin site0003\nrun\nquit\n' | \
//!     cargo run --release -p mube-examples --bin interactive
//! ```
//!
//! Optional argument: the number of synthetic sources (default 60).

use std::io::BufRead;
use std::sync::Arc;

use mube_core::constraints::Constraints;
use mube_core::problem::Problem;
use mube_core::qefs::paper_default_qefs;
use mube_core::session::Session;
use mube_match::similarity::JaccardNGram;
use mube_match::ClusterMatcher;
use mube_opt::TabuSearch;
use mube_synth::{generate, SynthConfig};

const HELP: &str = "\
commands:
  run                     solve with the current constraints and weights
  show                    print the latest solution (sources + mediated schema)
  sources                 list the selected sources
  universe [n]            list the first n sources of the universe (default 20)
  pin <site>              require a source in every future solution
  unpin <site>            drop that requirement
  adopt <ga-index>        turn GA <i> of the latest solution into a constraint
  bridge <site> <attr> <site> <attr>
                          GA constraint matching two attributes by example
  weight <qef> <w>        set one QEF weight (others rescale)
  theta <v> | beta <n> | max <n>
                          set matching threshold / min GA size / max sources
  constraints             show the active constraints
  why                     leave-one-out contribution of each selected source
  overlap                 estimated pairwise data overlap of the selection
  alts [k]                show the k best alternative solutions (default 3)
  history                 show quality across iterations
  help                    this text
  quit                    exit";

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);
    println!("µBE interactive session — {n} synthetic book sources. Type `help`.");
    let synth = generate(&SynthConfig::paper(n), 2007);
    let universe = Arc::clone(&synth.universe);
    let matcher = Arc::new(ClusterMatcher::new(
        Arc::clone(&universe),
        JaccardNGram::trigram(),
    ));
    let problem = Problem::new(
        Arc::clone(&universe),
        matcher,
        paper_default_qefs("mttf"),
        Constraints::with_max_sources(10),
    )
    .expect("default constraints are valid");
    let mut session = Session::new(problem, Box::new(TabuSearch::default()), 42);

    let stdin = std::io::stdin();
    print!("> ");
    use std::io::Write;
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            [] => {}
            ["quit" | "exit" | "q"] => break,
            ["help" | "h" | "?"] => println!("{HELP}"),
            ["run" | "r"] => match session.run() {
                Ok(sol) => println!(
                    "Q = {:.4} with {} sources, {} GAs ({} evaluations). `show` for details.",
                    sol.quality,
                    sol.sources.len(),
                    sol.schema.len(),
                    sol.evaluations
                ),
                Err(e) => println!("no feasible solution: {e}"),
            },
            ["show" | "s"] => match session.latest() {
                Some(sol) => println!("{}", sol.display(&universe)),
                None => println!("no solution yet — `run` first"),
            },
            ["sources"] => match session.latest() {
                Some(sol) => {
                    for &s in &sol.sources {
                        let src = universe.source(s);
                        println!("  {} ({} tuples)", src.name(), src.cardinality());
                    }
                }
                None => println!("no solution yet — `run` first"),
            },
            ["universe", rest @ ..] => {
                let k: usize = rest.first().and_then(|a| a.parse().ok()).unwrap_or(20);
                for src in universe.sources().take(k) {
                    let names: Vec<&str> = src.schema().names().collect();
                    println!("  {}: {{{}}}", src.name(), names.join(", "));
                }
            }
            ["pin", site] => report(session.pin_source_by_name(site)),
            ["unpin", site] => match universe.source_by_name(site) {
                Some(src) => report(session.unpin_source(src.id())),
                None => println!("unknown source `{site}`"),
            },
            ["adopt", idx] => match idx.parse::<usize>() {
                Ok(i) => report(session.adopt_ga(i)),
                Err(_) => println!("usage: adopt <ga-index>"),
            },
            ["bridge", s1, a1, s2, a2] => {
                report(session.require_ga_by_names(&[(s1, a1), (s2, a2)]));
            }
            ["weight", qef, w] => match w.parse::<f64>() {
                Ok(w) => report(session.set_weight(qef, w)),
                Err(_) => println!("usage: weight <qef> <value in [0,1]>"),
            },
            ["theta", v] => match v.parse::<f64>() {
                Ok(v) => report(session.set_theta(v)),
                Err(_) => println!("usage: theta <value in [0,1]>"),
            },
            ["beta", v] => match v.parse::<usize>() {
                Ok(v) => report(session.set_beta(v)),
                Err(_) => println!("usage: beta <n>"),
            },
            ["max", v] => match v.parse::<usize>() {
                Ok(v) => report(session.set_max_sources(v)),
                Err(_) => println!("usage: max <n>"),
            },
            ["constraints"] => {
                let c = session.constraints();
                println!(
                    "max_sources={} theta={} beta={}",
                    c.max_sources, c.theta, c.beta
                );
                for s in &c.required_sources {
                    println!("  pinned: {}", universe.source(*s).name());
                }
                for ga in &c.required_gas {
                    println!("  GA constraint: {}", ga.display(&universe));
                }
            }
            ["why"] => match session.latest() {
                Some(sol) => {
                    let explanation = mube_core::explain(session.problem(), sol);
                    print!("{}", explanation.display(&universe));
                    let dead: Vec<&str> = explanation
                        .dead_weight()
                        .map(|c| universe.source(c.source).name())
                        .collect();
                    if !dead.is_empty() {
                        println!("  (consider dropping: {})", dead.join(", "));
                    }
                }
                None => println!("no solution yet — `run` first"),
            },
            ["overlap"] => match session.latest() {
                Some(sol) => {
                    let matrix = mube_core::overlap_matrix(&universe, &sol.sources);
                    let heavy = matrix.heavy_pairs(0.25);
                    if heavy.is_empty() {
                        println!("no pair overlaps by 25% or more");
                    }
                    for (a, b, frac) in heavy {
                        println!(
                            "  {} ∩ {} ≈ {:.0}%",
                            universe.source(a).name(),
                            universe.source(b).name(),
                            frac * 100.0
                        );
                    }
                }
                None => println!("no solution yet — `run` first"),
            },
            ["alts", rest @ ..] => {
                let k: usize = rest.first().and_then(|a| a.parse().ok()).unwrap_or(3);
                match session
                    .problem()
                    .alternatives(&TabuSearch::default(), 99, k)
                {
                    Ok(alts) => {
                        for (i, alt) in alts.iter().enumerate() {
                            let names: Vec<&str> = alt
                                .sources
                                .iter()
                                .map(|&s| universe.source(s).name())
                                .collect();
                            println!(
                                "  #{i}: Q={:.4}, {} GAs, sources: {}",
                                alt.quality,
                                alt.schema.len(),
                                names.join(", ")
                            );
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            ["history"] => {
                for (i, s) in session.history().iter().enumerate() {
                    println!(
                        "  iteration {}: Q={:.4}, |S|={}, GAs={}",
                        i + 1,
                        s.quality,
                        s.sources.len(),
                        s.schema.len()
                    );
                }
            }
            other => println!("unknown command {other:?} — `help` lists commands"),
        }
        print!("> ");
        std::io::stdout().flush().ok();
    }
    println!("\nbye");
}

fn report(result: Result<(), mube_core::MubeError>) {
    match result {
        Ok(()) => println!("ok"),
        Err(e) => println!("error: {e}"),
    }
}

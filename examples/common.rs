//! Small shared helpers for the example binaries.

use mube_core::solution::Solution;
use mube_core::source::Universe;

/// Prints a section banner.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a solution report.
pub fn show(universe: &Universe, solution: &Solution) {
    println!("{}", solution.display(universe));
}

/// Prints what changed between two session iterations.
pub fn show_diff(prev: &Solution, next: &Solution) {
    let diff = prev.diff(next);
    println!(
        "changes vs previous iteration: +{} / -{} sources, {} GA(s) changed",
        diff.sources_added.len(),
        diff.sources_removed.len(),
        diff.gas_changed
    );
}

//! The paper's motivating scenario (§1, Figure 1): integrating hidden-Web
//! theater-ticket sources discovered through CompletePlanet.com.
//!
//! The eleven schemas below are exactly the ones the paper prints in
//! Figure 1. The user wants a handful of sources and a mediated schema, and
//! steers `µBE` across iterations: first an unconstrained run, then a GA
//! constraint bridging the various "keyword"-flavoured attributes, then
//! pinning a favourite vendor.
//!
//! Run with: `cargo run --release -p mube-examples --bin theater_tickets`

use std::sync::Arc;

use mube_core::constraints::Constraints;
use mube_core::problem::Problem;
use mube_core::qefs::paper_default_qefs;
use mube_core::schema::Schema;
use mube_core::session::Session;
use mube_core::source::{SourceSpec, Universe};
use mube_examples::{section, show, show_diff};
use mube_match::similarity::JaccardNGram;
use mube_match::ClusterMatcher;
use mube_opt::TabuSearch;
use mube_sketch::pcsa::{PcsaConfig, PcsaSignature};

/// Figure 1 of the paper, verbatim: `(site, attributes)`.
const FIGURE_1: &[(&str, &[&str])] = &[
    ("tonyawards.com", &["keywords"]),
    ("whatsonstage.com", &["your town"]),
    ("aceticket.com", &["state", "city", "event", "venue"]),
    ("canadiantheatre.com", &["phrase", "search term"]),
    ("londontheatre.co.uk", &["type", "keyword"]),
    ("mime.info.com", &["search for"]),
    (
        "pbs.org",
        &[
            "program title",
            "date",
            "author",
            "actor",
            "director",
            "keyword",
        ],
    ),
    ("pa.msu.edu", &["keyword"]),
    ("wstonline.org", &["keyword", "after date", "before date"]),
    (
        "officiallondontheatre.co.uk",
        &["keyword", "after date", "before date"],
    ),
    (
        "lastminute.com",
        &["event name", "event type", "location", "date", "radius"],
    ),
];

/// Synthesizes plausible data characteristics for a site (the paper's
/// sources are live hidden-Web sites; we stand in deterministic listings).
fn listings(index: u64) -> (u64, PcsaSignature, f64) {
    let cardinality = 2_000 + index * 1_700;
    let start = index * 1_100; // overlapping listing ranges across sites
    let mut sig = PcsaSignature::new(PcsaConfig::default_for_sources(11));
    for t in start..start + cardinality {
        sig.insert(t);
    }
    let mttf = 40.0 + ((index * 37) % 100) as f64; // spread of reliabilities
    (cardinality, sig, mttf)
}

fn main() {
    let mut builder = Universe::builder();
    for (i, (site, attrs)) in FIGURE_1.iter().enumerate() {
        let (cardinality, sig, mttf) = listings(i as u64);
        builder.add_source(
            SourceSpec::new(*site, Schema::new(attrs.iter().copied()))
                .cardinality(cardinality)
                .signature(sig)
                .characteristic("mttf", mttf),
        );
    }
    let universe = Arc::new(builder.build().expect("Figure 1 schemas are well-formed"));
    let matcher = Arc::new(ClusterMatcher::new(
        Arc::clone(&universe),
        JaccardNGram::trigram(),
    ));

    // Choose at most 5 of the 11 sites. θ = 0.35: hidden-Web labels are
    // noisy, so demand moderate lexical evidence.
    let problem = Problem::new(
        Arc::clone(&universe),
        matcher,
        paper_default_qefs("mttf"),
        Constraints::with_max_sources(5).theta(0.35),
    )
    .expect("constraints are valid");
    let mut session = Session::new(problem, Box::new(TabuSearch::default()), 2007);

    section("Iteration 1 — unconstrained");
    let first = session.run().expect("feasible").clone();
    show(&universe, &first);

    // The matcher cannot know that "keywords", "search term", "search for",
    // and "phrase" all mean the same text box. Bridge two of them by
    // example and let the cluster grow (§3's bridging effect).
    section("Iteration 2 — teach it that keyword ≈ search term");
    session
        .require_ga_by_names(&[
            ("tonyawards.com", "keywords"),
            ("canadiantheatre.com", "search term"),
        ])
        .expect("both attributes exist");
    let second = session.run().expect("feasible").clone();
    show(&universe, &second);
    show_diff(&first, &second);
    let keyword_ga = second
        .schema
        .gas()
        .iter()
        .find(|ga| ga.touches_source(universe.source_by_name("tonyawards.com").unwrap().id()))
        .expect("the bridged GA survives");
    println!(
        "bridged keyword GA now spans {} sources: {}",
        keyword_ga.len(),
        keyword_ga.display(&universe)
    );

    // The user has a favourite vendor (people do, the paper notes) — pin it.
    section("Iteration 3 — always include lastminute.com");
    session
        .pin_source_by_name("lastminute.com")
        .expect("site exists");
    let third = session.run().expect("feasible").clone();
    show(&universe, &third);
    show_diff(&second, &third);
    assert!(third
        .sources
        .contains(&universe.source_by_name("lastminute.com").unwrap().id()));

    section("Final mediated schema, as source → GA mapping");
    let mapping = mube_core::ga::mapping_by_source(&third.schema);
    for (source, attrs) in mapping {
        let site = universe.source(source).name();
        let cells: Vec<String> = attrs
            .iter()
            .map(|(a, ga)| format!("{} → GA{}", universe.attr_name(*a).unwrap_or("?"), ga))
            .collect();
        println!("  {site}: {}", cells.join(", "));
    }
}

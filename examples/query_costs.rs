//! Query-time costs of a selection — the paper's motivation, materialized.
//!
//! §1 of the paper argues for bounded, redundancy-aware source selection
//! because every included source costs retrieval, mediation mapping, and
//! inconsistency resolution at query time. This example solves the same
//! universe twice — once favouring raw cardinality, once favouring low
//! redundancy — then *executes the same query* over both solutions with
//! `mube-exec` and compares what the warehouse actually pays.
//!
//! Run with: `cargo run --release -p mube-examples --bin query_costs`

use std::sync::Arc;

use mube_core::constraints::Constraints;
use mube_core::problem::Problem;
use mube_core::qefs::paper_default_qefs;
use mube_examples::section;
use mube_exec::{Executor, Query, WindowBackend};
use mube_match::similarity::JaccardNGram;
use mube_match::ClusterMatcher;
use mube_opt::TabuSearch;
use mube_synth::{generate, SynthConfig};

fn main() {
    section("Setup: 120 synthetic book sources");
    let synth = generate(&SynthConfig::paper(120), 2007);
    let universe = Arc::clone(&synth.universe);
    let matcher: Arc<dyn mube_core::MatchOperator> = Arc::new(ClusterMatcher::new(
        Arc::clone(&universe),
        JaccardNGram::trigram(),
    ));

    // QEF order: matching, cardinality, coverage, redundancy, mttf.
    let solve_with = |weights: [f64; 5]| {
        let qefs = paper_default_qefs("mttf")
            .with_weights(&weights)
            .expect("valid weights");
        let mut problem = Problem::new(
            Arc::clone(&universe),
            Arc::clone(&matcher),
            paper_default_qefs("mttf"),
            Constraints::with_max_sources(12),
        )
        .expect("constraints are valid");
        problem.set_qefs(qefs);
        problem.solve(&TabuSearch::default(), 7).expect("feasible")
    };

    section("Two solutions, two philosophies");
    let hoarder = solve_with([0.10, 0.60, 0.10, 0.05, 0.15]); // max tuples
    let curator = solve_with([0.10, 0.05, 0.30, 0.40, 0.15]); // max coverage, min overlap
    println!(
        "hoarder (cardinality-weighted): {} sources, {} total tuples",
        hoarder.sources.len(),
        hoarder
            .sources
            .iter()
            .map(|&s| universe.source(s).cardinality())
            .sum::<u64>()
    );
    println!(
        "curator (redundancy-weighted):  {} sources, {} total tuples",
        curator.sources.len(),
        curator
            .sources
            .iter()
            .map(|&s| universe.source(s).cardinality())
            .sum::<u64>()
    );

    section("Execute the same query over both");
    let backend = WindowBackend::new(&synth);
    let executor = Executor::new(Arc::clone(&universe), backend);
    // A broad selection query over a quarter of the General pool.
    let query = Query::range(0, 500_000);

    for (label, solution) in [("hoarder", &hoarder), ("curator", &curator)] {
        let report = executor.execute_solution(solution, &query);
        println!(
            "{label}: {} distinct answers from {} fetched tuples \
             ({} duplicates, {:.0}% wasted transfer), makespan {:?}, total work {:?}",
            report.distinct(),
            report.fetched,
            report.duplicates(),
            report.waste() * 100.0,
            report.makespan,
            report.total_cost,
        );
    }

    let hoarder_report = executor.execute_solution(&hoarder, &query);
    let curator_report = executor.execute_solution(&curator, &query);
    section("The paper's point");
    println!(
        "the curator answers {:.0}% as many distinct tuples while transferring {:.0}% as much data",
        100.0 * curator_report.distinct() as f64 / hoarder_report.distinct().max(1) as f64,
        100.0 * curator_report.fetched as f64 / hoarder_report.fetched.max(1) as f64,
    );
    assert!(
        curator_report.waste() <= hoarder_report.waste() + 0.05,
        "the redundancy-weighted selection should not waste more transfer"
    );
}

//! n:m matching through compound schema elements — the paper's §2.1
//! extension, demonstrated end to end.
//!
//! 1:1 matching cannot relate `{first name, last name}` in one source to
//! `{full name}` in another. Declaring the pair a *compound element*
//! derives a universe where the pair is one attribute named
//! "first name last name"; the ordinary clustering then matches it with
//! "full name", and the result expands back to a genuine 2:1
//! correspondence over the original attributes.
//!
//! Run with: `cargo run --release -p mube-examples --bin compound_matching`

use std::collections::BTreeSet;
use std::sync::Arc;

use mube_core::constraints::Constraints;
use mube_core::matchop::{MatchOperator, MatchOutcome};
use mube_core::schema::Schema;
use mube_core::source::{SourceSpec, Universe};
use mube_core::SourceId;
use mube_examples::section;
use mube_match::{ClusterMatcher, Compounding, Ensemble};

fn main() {
    let mut b = Universe::builder();
    b.add_source(SourceSpec::new(
        "registry-a",
        Schema::new(["first name", "last name", "birth date"]),
    ));
    b.add_source(SourceSpec::new(
        "registry-b",
        Schema::new(["full name", "birth date"]),
    ));
    b.add_source(SourceSpec::new(
        "registry-c",
        Schema::new(["name", "date of birth"]),
    ));
    let universe = Arc::new(b.build().expect("well-formed"));

    section("Plain 1:1 matching");
    let matcher = ClusterMatcher::new(Arc::clone(&universe), Ensemble::lexical());
    let sources: BTreeSet<SourceId> = universe.source_ids().collect();
    let constraints = Constraints::with_max_sources(3).theta(0.35);
    let MatchOutcome::Matched { schema, .. } =
        matcher.match_sources(&universe, &sources, &constraints)
    else {
        panic!("expected a match")
    };
    print!("{}", schema.display(&universe));
    let split_matched = schema.gas().iter().any(|ga| {
        ga.touches_source(SourceId(0)) && {
            let name = universe
                .attr_name(*ga.attrs().iter().find(|a| a.source == SourceId(0)).unwrap())
                .unwrap();
            name.contains("name")
        }
    });
    println!(
        "registry-a's split name fields matched a name concept: {}",
        if split_matched {
            "yes (partially, at best)"
        } else {
            "no"
        }
    );

    section("With a compound element: {first name, last name} acts as one");
    let mut compounding = Compounding::new();
    compounding
        .add_group(SourceId(0), [0, 1])
        .expect("valid group");
    let derived = compounding.derive(&universe).expect("derivation succeeds");
    let derived_universe = Arc::new(derived.universe.clone());
    let matcher = ClusterMatcher::new(Arc::clone(&derived_universe), Ensemble::lexical());
    let sources: BTreeSet<SourceId> = derived_universe.source_ids().collect();
    let MatchOutcome::Matched { schema, quality } =
        matcher.match_sources(&derived_universe, &sources, &constraints)
    else {
        panic!("expected a match")
    };
    println!("derived-universe matching (F1 = {quality:.3}):");
    print!("{}", schema.display(&derived_universe));

    section("Expanded back to the original attributes (n:m)");
    let expanded = derived.expand(&schema);
    for (i, ga) in expanded.gas.iter().enumerate() {
        let parts: Vec<String> = ga
            .groups
            .iter()
            .map(|(source, attrs)| {
                let names: Vec<&str> = attrs
                    .iter()
                    .map(|&a| universe.attr_name(a).unwrap_or("?"))
                    .collect();
                format!(
                    "{}:{{{}}}",
                    universe.source(*source).name(),
                    names.join(" + ")
                )
            })
            .collect();
        println!(
            "  correspondence {i}: {} {}",
            parts.join(" ↔ "),
            if ga.is_nm() { "(n:m)" } else { "(1:1)" }
        );
    }
    let nm = expanded
        .gas
        .iter()
        .find(|ga| ga.is_nm())
        .expect("an n:m correspondence exists");
    assert!(
        nm.width() >= 3,
        "first+last ↔ full name involves at least 3 attributes"
    );
    println!("\nthe split name fields now map as one unit ✓");
}

//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored stand-in
//! keeps the workspace's benches compiling and runnable: it measures each
//! benchmark with a simple calibrated-iteration loop and prints median
//! per-iteration timings. No statistical analysis, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for convenience (same as
/// `std::hint::black_box`).
pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET_TIME: Duration = Duration::from_millis(400);

/// The benchmark context passed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness ignores throughput.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness auto-calibrates.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Runs one unparameterized benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, usually built from the varying parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifies a benchmark by its parameter value.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Identifies a benchmark by a function name and a parameter value.
    pub fn new(name: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Units processed per iteration (ignored by this harness).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; this harness runs one setup per measured call either way).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Drives the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine`, running it enough times to fill the target
    /// measurement window.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: find an iteration count that takes a measurable time.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= TARGET_TIME || n >= 1 << 20 {
                self.iters_done = n;
                self.elapsed = took;
                return;
            }
            let scale = if took.is_zero() {
                16
            } else {
                (TARGET_TIME.as_nanos() / took.as_nanos().max(1)).clamp(2, 16) as u64
            };
            n = n.saturating_mul(scale);
        }
    }

    /// Measures `routine` over inputs produced by `setup`, excluding the
    /// setup cost from the timing. Unlike real criterion this times each
    /// call individually and sums, which is accurate enough for the
    /// coarse per-iteration medians this harness reports.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut n: u64 = 0;
        let mut measured = Duration::ZERO;
        while measured < TARGET_TIME && n < 1 << 20 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            n += 1;
        }
        self.iters_done = n;
        self.elapsed = measured;
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let per_iter = if bencher.iters_done == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iters_done.min(u64::from(u32::MAX)) as u32
    };
    println!(
        "bench {label:<40} {:>12.3} µs/iter ({} iters)",
        per_iter.as_nanos() as f64 / 1000.0,
        bencher.iters_done,
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine() {
        let mut b = Bencher::default();
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert!(count > 0);
        assert!(b.iters_done > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(3)).sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }
}

//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored stand-in implements exactly the surface the workspace uses:
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), [`SeedableRng`],
//! the [`Rng`] extension trait (`random`, `random_range`, `random_bool`),
//! and the [`seq`] helpers (`SliceRandom::shuffle`, `IndexedRandom::choose`).
//!
//! Determinism is the only hard requirement the workspace places on its RNG
//! (every experiment and test is seed-driven); statistical quality is
//! provided by xoshiro256++, which passes BigCrush.

/// Low-level generator interface: a source of uniformly random bits.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the same convenience constructor the real crate offers.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            for (b, out) in v.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 1, 2];
            }
            StdRng { s }
        }
    }
}

/// A type samplable uniformly from its "natural" distribution (`Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty, matching the real crate.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection from indexable sequences.
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&w));
            let x = rng.random_range(5u64..=5);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Crude uniformity sanity check.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}

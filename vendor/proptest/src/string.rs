//! Regex-lite string generation backing the `&str` strategy.
//!
//! Supports the subset of regex syntax property tests actually use for
//! generation: literal characters, character classes (`[a-z0-9_]`, with
//! ranges and single characters), and counted repetition `{m}` / `{m,n}`
//! plus `+` / `*` / `?` applied to a class or literal. Anything fancier
//! panics with a clear message rather than silently mis-generating.

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Piece {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Term {
    piece: Piece,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let terms = parse(pattern);
    let mut out = String::new();
    for term in &terms {
        let count = if term.min == term.max {
            term.min
        } else {
            rng.random_range(term.min..=term.max)
        };
        for _ in 0..count {
            match &term.piece {
                Piece::Literal(c) => out.push(*c),
                Piece::Class(ranges) => {
                    let (lo, hi) = ranges[rng.random_range(0..ranges.len())];
                    out.push(
                        char::from_u32(rng.random_range(lo as u32..=hi as u32))
                            .expect("class ranges stay within valid chars"),
                    );
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Term> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut terms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let piece = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"))
                    + i;
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern `{pattern}`");
                i = close + 1;
                Piece::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling `\\` in pattern `{pattern}`"));
                i += 1;
                match c {
                    'd' => Piece::Class(vec![('0', '9')]),
                    'w' => Piece::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    other => Piece::Literal(other),
                }
            }
            '.' => {
                i += 1;
                Piece::Class(vec![(' ', '~')])
            }
            c if "(){}*+?|".contains(c) => {
                panic!("unsupported regex syntax `{c}` in pattern `{pattern}`")
            }
            c => {
                i += 1;
                Piece::Literal(c)
            }
        };
        // Optional repetition suffix.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else {
            (1, 1)
        };
        terms.push(Term { piece, min, max });
    }
    terms
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_counted_repetition() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "len {} of {s:?}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_digits() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = generate("id-\\d{3}", &mut rng);
        assert!(s.starts_with("id-"));
        assert_eq!(s.len(), 6);
        assert!(s[3..].chars().all(|c| c.is_ascii_digit()));
    }
}

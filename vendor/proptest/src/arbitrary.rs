//! The [`any`] entry point and the [`Arbitrary`] trait.

use rand::rngs::StdRng;
use rand::{Rng, Standard};

use crate::strategy::Strategy;

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl<T: Standard> Arbitrary for T {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

/// The canonical strategy for `A` (`any::<u64>()`, ...).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(core::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_covers_width() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = any::<u64>();
        // Over a few draws we should see values above u32::MAX — i.e. the
        // full 64-bit domain, not a narrowed one.
        assert!((0..64).any(|_| s.new_value(&mut rng) > u64::from(u32::MAX)));
    }
}

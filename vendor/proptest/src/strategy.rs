//! The [`Strategy`] trait and core combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest, a strategy here is just a deterministic-RNG-driven
/// generator: no shrink trees. `new_value` takes `&self` so one strategy
/// value can serve every case of a test run.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from it,
    /// and draws from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Strategy returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

trait ErasedStrategy<T> {
    fn erased_new_value(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_new_value(&self, rng: &mut StdRng) -> S::Value {
        self.new_value(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.erased_new_value(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `&str` strategies are regex-lite string generators (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut StdRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (1usize..5).prop_flat_map(|n| (0u64..10).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = s.new_value(&mut rng);
            assert!((1..5).contains(&n));
            assert!(v < 10);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = StdRng::seed_from_u64(2);
        let (a, b, c) = (0u64..5, -1.0f64..1.0, Just("x")).new_value(&mut rng);
        assert!(a < 5);
        assert!((-1.0..1.0).contains(&b));
        assert_eq!(c, "x");
    }
}

//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored stand-in
//! implements the slice of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`;
//! * range, tuple, `&str`-regex-lite, [`collection::vec`], [`Just`], and
//!   [`arbitrary::any`] strategies;
//! * the [`proptest!`] macro plus `prop_assert!` / `prop_assert_eq!` /
//!   `prop_assert_ne!`;
//! * a deterministic [`test_runner::TestRunner`] (per-test fixed seed, one
//!   sub-seed per case).
//!
//! The one deliberate omission is *shrinking*: a failing case reports its
//! case number and deterministic seed instead of a minimized input. Every
//! test in the workspace is seed-reproducible, so failures can still be
//! replayed exactly.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the workspace's property tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Module-style access (`prop::collection::vec`), mirroring the real
    /// prelude's `prop` re-export.
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values compare equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        $crate::prop_assert!(
            (&$a) == (&$b),
            concat!("assertion failed: ", stringify!($a), " == ", stringify!($b))
        )
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        $crate::prop_assert!((&$a) == (&$b), $($fmt)*)
    };
}

/// Asserts two values compare unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        $crate::prop_assert!(
            (&$a) != (&$b),
            concat!("assertion failed: ", stringify!($a), " != ", stringify!($b))
        )
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        $crate::prop_assert!((&$a) != (&$b), $($fmt)*)
    };
}

/// Declares property tests. Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(config_expr)]   // optional
///     #[test]
///     fn my_property(x in 0u64..100, mut v in some_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            @cfg ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Internal muncher for [`proptest!`]; one test function per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let runner = $crate::test_runner::TestRunner::new(config);
            runner.run(
                concat!(file!(), "::", stringify!($name)),
                |__proptest_rng| {
                    $(
                        let $pat = $crate::strategy::Strategy::new_value(
                            &($strat),
                            __proptest_rng,
                        );
                    )+
                    { $body }
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_tests! { @cfg ($cfg) $($rest)* }
    };
}

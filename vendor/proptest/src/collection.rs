//! Collection strategies (`prop::collection::vec`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A size specification for collection strategies: a fixed size, a
/// half-open range, or an inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy generating `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.random_range(self.size.min..=self.size.max)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn length_respects_size_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = vec(0u64..100, 2..6);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
        let fixed = vec(0u64..100, 4usize);
        assert_eq!(fixed.new_value(&mut rng).len(), 4);
    }
}

//! The deterministic test runner behind the [`crate::proptest!`] macro.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to run per test.
    pub cases: u32,
    /// Unused (no shrinking in this implementation); kept for source
    /// compatibility with `..ProptestConfig::default()` updates.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A failed test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's assertions did not hold.
    Fail(String),
    /// The case asked to be discarded (unsupported filters map here).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Runs one property over `config.cases` deterministic cases.
#[derive(Debug, Clone)]
pub struct TestRunner {
    config: Config,
}

impl TestRunner {
    /// Builds a runner.
    pub fn new(config: Config) -> Self {
        TestRunner { config }
    }

    /// Runs `case` once per configured case with a deterministic RNG derived
    /// from `test_id` and the case index; panics (standard `#[test]`
    /// failure) on the first failing case, reporting how to reproduce it.
    pub fn run<F>(&self, test_id: &str, case: F)
    where
        F: Fn(&mut StdRng) -> Result<(), TestCaseError>,
    {
        for index in 0..self.config.cases {
            let seed = case_seed(test_id, index);
            let mut rng = StdRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(message)) => panic!(
                    "proptest case {index}/{} failed (test `{test_id}`, case seed \
                     {seed:#x}): {message}",
                    self.config.cases
                ),
            }
        }
    }
}

/// Deterministic per-case seed: stable across runs of the same binary (the
/// std `DefaultHasher` uses fixed keys).
fn case_seed(test_id: &str, index: u32) -> u64 {
    let mut hasher = DefaultHasher::new();
    test_id.hash(&mut hasher);
    index.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_cases() {
        let runner = TestRunner::new(Config {
            cases: 10,
            ..Config::default()
        });
        let mut count = 0;
        let counter = std::cell::Cell::new(0u32);
        runner.run("t", |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        count += counter.get();
        assert_eq!(count, 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics_with_message() {
        let runner = TestRunner::new(Config {
            cases: 3,
            ..Config::default()
        });
        runner.run("t", |_| Err(TestCaseError::fail("boom")));
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        assert_eq!(case_seed("a", 0), case_seed("a", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
    }
}
